(* Tests for the temporal assertion monitor, including real I2C
   protocol assertions on the ExpoCU's bus master. *)

open Hdl
module A = Assert_mon

let counter_design () =
  let open Builder.Dsl in
  let b = Builder.create "acounter" in
  let reset = Builder.input b "reset" 1 in
  let count = Builder.output b "count" 8 in
  let odd = Builder.output b "odd" 1 in
  Builder.sync b "tick"
    [
      if_ (v reset)
        [ count <-- c ~width:8 0 ]
        [ count <-- (v count +: c ~width:8 1) ];
    ];
  Builder.comb b "flags" [ odd <-- bit (v count) 0 ];
  Builder.finish b

let test_always_holds () =
  let sim = Rtl_sim.create (counter_design ()) in
  let mon = A.create sim in
  (* parity flag consistent with counter bit 0 *)
  A.add mon
    (A.always ~label:"odd consistent" (fun s ->
         Rtl_sim.get_int s "odd" = Rtl_sim.get_int s "count" land 1));
  Rtl_sim.set_input_int sim "reset" 1;
  A.step mon;
  Rtl_sim.set_input_int sim "reset" 0;
  A.run mon 50;
  A.finish mon;
  Alcotest.(check bool) "no violations" true (A.ok mon)

let test_always_fails_and_reports_cycle () =
  let sim = Rtl_sim.create (counter_design ()) in
  let mon = A.create sim in
  A.add mon (A.never ~label:"count below 5" (A.port_eq "count" 5));
  Rtl_sim.set_input_int sim "reset" 1;
  A.step mon;
  Rtl_sim.set_input_int sim "reset" 0;
  A.run mon 20;
  A.finish mon;
  match A.violations mon with
  | [ v ] ->
      Alcotest.(check string) "label" "count below 5" v.A.label;
      Alcotest.(check int) "at cycle" 6 v.A.at_cycle
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

let test_implies_next () =
  let sim = Rtl_sim.create (counter_design ()) in
  let mon = A.create sim in
  (* count=3 implies count=4 next cycle (true once reset released) *)
  A.add mon
    (A.implies_next ~label:"3 then 4" (A.port_eq "count" 3)
       (A.port_eq "count" 4));
  (* deliberately false property to check detection *)
  A.add mon
    (A.implies_next ~label:"3 then 9" (A.port_eq "count" 3)
       (A.port_eq "count" 9));
  Rtl_sim.set_input_int sim "reset" 1;
  A.step mon;
  Rtl_sim.set_input_int sim "reset" 0;
  A.run mon 20;
  A.finish mon;
  let labels = List.map (fun v -> v.A.label) (A.violations mon) in
  Alcotest.(check (list string)) "only the false one fires" [ "3 then 9" ]
    labels

let test_eventually_within () =
  let sim = Rtl_sim.create (counter_design ()) in
  let mon = A.create sim in
  A.add mon
    (A.eventually_within ~label:"wraps in time" (A.port_eq "count" 250) 10
       (A.port_eq "count" 0));
  A.add mon
    (A.eventually_within ~label:"too tight" (A.port_eq "count" 250) 2
       (A.port_eq "count" 0));
  Rtl_sim.set_input_int sim "reset" 1;
  A.step mon;
  Rtl_sim.set_input_int sim "reset" 0;
  A.run mon 300;
  A.finish mon;
  let labels = List.map (fun v -> v.A.label) (A.violations mon) in
  Alcotest.(check (list string)) "tight bound fires" [ "too tight" ] labels

let test_open_obligation_at_finish () =
  let sim = Rtl_sim.create (counter_design ()) in
  let mon = A.create sim in
  A.add mon
    (A.eventually_within ~label:"unreachable" (A.port_eq "count" 3) 1000
       (A.port_eq "count" 99));
  Rtl_sim.set_input_int sim "reset" 1;
  A.step mon;
  Rtl_sim.set_input_int sim "reset" 0;
  A.run mon 10;
  A.finish mon;
  Alcotest.(check bool) "open obligation reported" false (A.ok mon)

(* ------------------------------------------------------------------ *)
(* I2C protocol assertions on the real bus master                      *)

let i2c_properties mon =
  (* Bus-level legality: SDA may change while SCL is high only as a
     START (fall, opening a transaction) or a STOP (rise, closing it);
     every other scl-high change is a protocol violation. *)
  let prev_scl = ref 1 and prev_sda = ref 1 and phase = ref 0 in
  let bus_sda s =
    if Rtl_sim.get_int s "sda_oe" = 1 then Rtl_sim.get_int s "sda_out" else 1
  in
  A.add mon
    (A.always ~label:"sda changes on high scl are only start/stop" (fun s ->
         let scl = Rtl_sim.get_int s "scl" in
         let sda = bus_sda s in
         let legal =
           if scl = 1 && !prev_scl = 1 && sda <> !prev_sda then
             if !prev_sda = 1 && sda = 0 && !phase = 0 then begin
               phase := 1;
               true (* START *)
             end
             else if !prev_sda = 0 && sda = 1 && !phase = 1 then begin
               phase := 0;
               true (* STOP *)
             end
             else false
           else true
         in
         prev_scl := scl;
         prev_sda := sda;
         legal));
  (* busy and done are never high together *)
  A.add mon
    (A.never ~label:"busy and done exclusive"
       (A.( &&& ) (A.port "busy") (A.port "done")));
  (* bus idles released and high *)
  A.add mon
    (A.implies_same ~label:"idle bus released" (A.neg (A.port "busy"))
       (A.( ||| ) (A.neg (A.port "sda_oe")) (A.port "sda_out")));
  (* a transaction completes *)
  A.add mon
    (A.eventually_within ~label:"go leads to done" (A.port "go")
       (Expocu.I2c.transaction_cycles ~divider:4 + 32)
       (A.port "done"))

let test_i2c_protocol_assertions () =
  List.iter
    (fun make ->
      let sim = Rtl_sim.create (make ()) in
      let mon = A.create sim in
      i2c_properties mon;
      Rtl_sim.set_input_int sim "reset" 1;
      A.step mon;
      Rtl_sim.set_input_int sim "reset" 0;
      Rtl_sim.set_input_int sim "sda_in" 0;
      Rtl_sim.set_input_int sim "dev_addr" 0x2A;
      Rtl_sim.set_input_int sim "reg_addr" 0x55;
      Rtl_sim.set_input_int sim "data" 0xC3;
      Rtl_sim.set_input_int sim "go" 1;
      A.step mon;
      Rtl_sim.set_input_int sim "go" 0;
      A.run mon (Expocu.I2c.transaction_cycles ~divider:4 + 64);
      A.finish mon;
      List.iter
        (fun v -> Format.printf "%a@." A.pp_violation v)
        (A.violations mon);
      Alcotest.(check bool) "protocol clean" true (A.ok mon))
    [
      (fun () -> Expocu.I2c.osss_module ());
      (fun () -> Expocu.I2c.systemc_module ());
      (fun () -> Expocu.I2c.vhdl_module ());
    ]

let test_i2c_assertion_catches_violation () =
  (* Same properties against a deliberately broken setup: the monitor
     must flag a missing completion when go is never consumed because
     reset is held. *)
  let sim = Rtl_sim.create (Expocu.I2c.osss_module ()) in
  let mon = A.create sim in
  i2c_properties mon;
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.set_input_int sim "go" 1;
  A.run mon 40;
  A.finish mon;
  Alcotest.(check bool) "missing done detected" false (A.ok mon)

let test_rose_helper () =
  let sim = Rtl_sim.create (counter_design ()) in
  let mon = A.create sim in
  let prev = ref false in
  let rising_bit0 = A.rose (fun s -> Rtl_sim.get_int s "odd" = 1) prev in
  let count = ref 0 in
  A.add mon
    (A.always (fun s ->
         if rising_bit0 s then incr count;
         true));
  Rtl_sim.set_input_int sim "reset" 1;
  A.step mon;
  Rtl_sim.set_input_int sim "reset" 0;
  A.run mon 20;
  (* bit0 rises every other cycle: 10 times in 20 cycles *)
  Alcotest.(check int) "edge count" 10 !count

let suite =
  [
    Alcotest.test_case "always holds" `Quick test_always_holds;
    Alcotest.test_case "violation reported" `Quick
      test_always_fails_and_reports_cycle;
    Alcotest.test_case "implies next" `Quick test_implies_next;
    Alcotest.test_case "eventually within" `Quick test_eventually_within;
    Alcotest.test_case "open obligation" `Quick test_open_obligation_at_finish;
    Alcotest.test_case "i2c protocol assertions" `Quick
      test_i2c_protocol_assertions;
    Alcotest.test_case "i2c assertion catches violation" `Quick
      test_i2c_assertion_catches_violation;
    Alcotest.test_case "rose helper" `Quick test_rose_helper;
  ]

let () = Alcotest.run "assert" [ ("assert", suite) ]
