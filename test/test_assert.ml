(* Tests for the temporal assertion monitor, including real I2C
   protocol assertions on the ExpoCU's bus master. *)

open Hdl
module A = Assert_mon

let counter_design () =
  let open Builder.Dsl in
  let b = Builder.create "acounter" in
  let reset = Builder.input b "reset" 1 in
  let count = Builder.output b "count" 8 in
  let odd = Builder.output b "odd" 1 in
  Builder.sync b "tick"
    [
      if_ (v reset)
        [ count <-- c ~width:8 0 ]
        [ count <-- (v count +: c ~width:8 1) ];
    ];
  Builder.comb b "flags" [ odd <-- bit (v count) 0 ];
  Builder.finish b

let test_always_holds () =
  let sim = Rtl_sim.create (counter_design ()) in
  let mon = A.create sim in
  (* parity flag consistent with counter bit 0 *)
  A.add mon
    (A.always ~label:"odd consistent" (fun s ->
         Rtl_sim.get_int s "odd" = Rtl_sim.get_int s "count" land 1));
  Rtl_sim.set_input_int sim "reset" 1;
  A.step mon;
  Rtl_sim.set_input_int sim "reset" 0;
  A.run mon 50;
  A.finish mon;
  Alcotest.(check bool) "no violations" true (A.ok mon)

let test_always_fails_and_reports_cycle () =
  let sim = Rtl_sim.create (counter_design ()) in
  let mon = A.create sim in
  A.add mon (A.never ~label:"count below 5" (A.port_eq "count" 5));
  Rtl_sim.set_input_int sim "reset" 1;
  A.step mon;
  Rtl_sim.set_input_int sim "reset" 0;
  A.run mon 20;
  A.finish mon;
  match A.violations mon with
  | [ v ] ->
      Alcotest.(check string) "label" "count below 5" v.A.label;
      Alcotest.(check int) "at cycle" 6 v.A.at_cycle
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

let test_implies_next () =
  let sim = Rtl_sim.create (counter_design ()) in
  let mon = A.create sim in
  (* count=3 implies count=4 next cycle (true once reset released) *)
  A.add mon
    (A.implies_next ~label:"3 then 4" (A.port_eq "count" 3)
       (A.port_eq "count" 4));
  (* deliberately false property to check detection *)
  A.add mon
    (A.implies_next ~label:"3 then 9" (A.port_eq "count" 3)
       (A.port_eq "count" 9));
  Rtl_sim.set_input_int sim "reset" 1;
  A.step mon;
  Rtl_sim.set_input_int sim "reset" 0;
  A.run mon 20;
  A.finish mon;
  let labels = List.map (fun v -> v.A.label) (A.violations mon) in
  Alcotest.(check (list string)) "only the false one fires" [ "3 then 9" ]
    labels

let test_eventually_within () =
  let sim = Rtl_sim.create (counter_design ()) in
  let mon = A.create sim in
  A.add mon
    (A.eventually_within ~label:"wraps in time" (A.port_eq "count" 250) 10
       (A.port_eq "count" 0));
  A.add mon
    (A.eventually_within ~label:"too tight" (A.port_eq "count" 250) 2
       (A.port_eq "count" 0));
  Rtl_sim.set_input_int sim "reset" 1;
  A.step mon;
  Rtl_sim.set_input_int sim "reset" 0;
  A.run mon 300;
  A.finish mon;
  let labels = List.map (fun v -> v.A.label) (A.violations mon) in
  Alcotest.(check (list string)) "tight bound fires" [ "too tight" ] labels

let test_open_obligation_at_finish () =
  let sim = Rtl_sim.create (counter_design ()) in
  let mon = A.create sim in
  A.add mon
    (A.eventually_within ~label:"unreachable" (A.port_eq "count" 3) 1000
       (A.port_eq "count" 99));
  Rtl_sim.set_input_int sim "reset" 1;
  A.step mon;
  Rtl_sim.set_input_int sim "reset" 0;
  A.run mon 10;
  A.finish mon;
  Alcotest.(check bool) "open obligation reported" false (A.ok mon)

(* ------------------------------------------------------------------ *)
(* I2C protocol assertions on the real bus master — the property
   bundle now lives in the library (Expocu.Monitors) so simulations
   and coverage reports share it with this test. *)

let test_i2c_protocol_assertions () =
  List.iter
    (fun make ->
      let sim = Rtl_sim.create (make ()) in
      let mon = A.create sim in
      Expocu.Monitors.add_i2c_props mon;
      Rtl_sim.set_input_int sim "reset" 1;
      A.step mon;
      Rtl_sim.set_input_int sim "reset" 0;
      Rtl_sim.set_input_int sim "sda_in" 0;
      Rtl_sim.set_input_int sim "dev_addr" 0x2A;
      Rtl_sim.set_input_int sim "reg_addr" 0x55;
      Rtl_sim.set_input_int sim "data" 0xC3;
      Rtl_sim.set_input_int sim "go" 1;
      A.step mon;
      Rtl_sim.set_input_int sim "go" 0;
      A.run mon (Expocu.I2c.transaction_cycles ~divider:4 + 64);
      A.finish mon;
      List.iter
        (fun v -> Format.printf "%a@." A.pp_violation v)
        (A.violations mon);
      Alcotest.(check bool) "protocol clean" true (A.ok mon))
    [
      (fun () -> Expocu.I2c.osss_module ());
      (fun () -> Expocu.I2c.systemc_module ());
      (fun () -> Expocu.I2c.vhdl_module ());
    ]

let test_i2c_assertion_catches_violation () =
  (* Same properties against a deliberately broken setup: the monitor
     must flag a missing completion when go is never consumed because
     reset is held. *)
  let sim = Rtl_sim.create (Expocu.I2c.osss_module ()) in
  let mon = A.create sim in
  Expocu.Monitors.add_i2c_props mon;
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.set_input_int sim "go" 1;
  A.run mon 40;
  A.finish mon;
  Alcotest.(check bool) "missing done detected" false (A.ok mon)

(* ------------------------------------------------------------------ *)
(* Outcome counting: real vs vacuous passes                            *)

let test_outcome_counts () =
  let sim = Rtl_sim.create (counter_design ()) in
  let mon = A.create sim in
  (* count=3 happens exactly once in 10 cycles; every other cycle the
     implication holds only vacuously *)
  A.add mon (A.implies_same ~label:"imp" (A.port_eq "count" 3) (A.port "odd"));
  Rtl_sim.set_input_int sim "reset" 1;
  A.step mon;
  Rtl_sim.set_input_int sim "reset" 0;
  A.run mon 9;
  A.finish mon;
  match A.summaries mon with
  | [ s ] ->
      Alcotest.(check string) "label" "imp" s.A.s_label;
      Alcotest.(check int) "one real pass" 1 s.A.passes;
      Alcotest.(check int) "rest vacuous" 9 s.A.vacuous;
      Alcotest.(check int) "no fails" 0 s.A.fails
  | l -> Alcotest.failf "expected one summary, got %d" (List.length l)

let test_db_monitors_and_json () =
  let sim = Rtl_sim.create (counter_design ()) in
  let mon = A.create sim in
  A.add mon (A.always ~label:"tauto" (fun _ -> true));
  A.add mon (A.never ~label:"hits five" (A.port_eq "count" 5));
  Rtl_sim.set_input_int sim "reset" 1;
  A.step mon;
  Rtl_sim.set_input_int sim "reset" 0;
  A.run mon 10;
  A.finish mon;
  (match A.db_monitors mon with
  | [ t; h ] ->
      Alcotest.(check string) "add order kept" "tauto" t.Cover.Db.m_name;
      Alcotest.(check int) "tauto passes every cycle" 11 t.Cover.Db.m_pass;
      Alcotest.(check int) "never records the hit" 1 h.Cover.Db.m_fail;
      Alcotest.(check int) "and passes the rest" 10 h.Cover.Db.m_pass
  | l -> Alcotest.failf "expected two monitors, got %d" (List.length l));
  let j = A.to_json mon in
  (match Obs.Json.member "ok" j with
  | Some (Obs.Json.Bool false) -> ()
  | _ -> Alcotest.fail "ok flag should be false");
  (match Obs.Json.member "props" j with
  | Some (Obs.Json.List l) ->
      Alcotest.(check int) "two props serialized" 2 (List.length l)
  | _ -> Alcotest.fail "no props list");
  match Obs.Json.member "violations" j with
  | Some (Obs.Json.List [ _ ]) -> ()
  | _ -> Alcotest.fail "expected exactly one serialized violation"

let test_expocu_monitor_clean () =
  (* The self-attaching top-level monitor stays clean over reset plus
     one small frame of the real ExpoCU, and its checks actually ran. *)
  let sim = Rtl_sim.create (Expocu.Expocu_top.rtl_top ()) in
  let mon = Expocu.Monitors.expocu_monitor sim in
  Rtl_sim.set_input_int sim "ext_reset" 0;
  Rtl_sim.set_input_int sim "target_bin" 7;
  Rtl_sim.set_input_int sim "sda_in" 0;
  Rtl_sim.run sim 15;
  Rtl_sim.set_input_int sim "frame_sync" 1;
  Rtl_sim.run sim 4;
  Rtl_sim.set_input_int sim "line_valid" 1;
  for px = 0 to 31 do
    Rtl_sim.set_input_int sim "pixel" (px * 8 mod 256);
    Rtl_sim.step sim
  done;
  Rtl_sim.set_input_int sim "line_valid" 0;
  Rtl_sim.set_input_int sim "frame_sync" 0;
  let guard = ref 0 in
  while Rtl_sim.get_int sim "frame_done" = 0 && !guard < 4000 do
    Rtl_sim.step sim;
    incr guard
  done;
  A.finish mon;
  List.iter (fun v -> Format.printf "%a@." A.pp_violation v) (A.violations mon);
  Alcotest.(check bool) "monitor clean on the real top" true (A.ok mon);
  let framing =
    List.find (fun s -> s.A.s_label = "i2c.sda_framing") (A.summaries mon)
  in
  Alcotest.(check bool) "framing checked non-vacuously" true
    (framing.A.passes > 0)

let test_rose_helper () =
  let sim = Rtl_sim.create (counter_design ()) in
  let mon = A.create sim in
  let prev = ref false in
  let rising_bit0 = A.rose (fun s -> Rtl_sim.get_int s "odd" = 1) prev in
  let count = ref 0 in
  A.add mon
    (A.always (fun s ->
         if rising_bit0 s then incr count;
         true));
  Rtl_sim.set_input_int sim "reset" 1;
  A.step mon;
  Rtl_sim.set_input_int sim "reset" 0;
  A.run mon 20;
  (* bit0 rises every other cycle: 10 times in 20 cycles *)
  Alcotest.(check int) "edge count" 10 !count

let suite =
  [
    Alcotest.test_case "always holds" `Quick test_always_holds;
    Alcotest.test_case "violation reported" `Quick
      test_always_fails_and_reports_cycle;
    Alcotest.test_case "implies next" `Quick test_implies_next;
    Alcotest.test_case "eventually within" `Quick test_eventually_within;
    Alcotest.test_case "open obligation" `Quick test_open_obligation_at_finish;
    Alcotest.test_case "i2c protocol assertions" `Quick
      test_i2c_protocol_assertions;
    Alcotest.test_case "i2c assertion catches violation" `Quick
      test_i2c_assertion_catches_violation;
    Alcotest.test_case "outcome counts" `Quick test_outcome_counts;
    Alcotest.test_case "db monitors and json" `Quick
      test_db_monitors_and_json;
    Alcotest.test_case "expocu monitor clean" `Quick test_expocu_monitor_clean;
    Alcotest.test_case "rose helper" `Quick test_rose_helper;
  ]

let () = Alcotest.run "assert" [ ("assert", suite) ]
