(* Tests for the SystemC-like simulation kernel: delta cycles, signals,
   clocks, clocked threads with reset restart, async threads, VCD. *)

module K = Sim.Kernel
module S = Sim.Signal
module C = Sim.Clock
module P = Sim.Process

let test_signal_update_phase () =
  let k = K.create () in
  let s = S.create k ~name:"s" 0 in
  let observed_during_eval = ref (-1) in
  K.add_startup k (fun () ->
      S.write s 7;
      (* Write is not visible until the update phase. *)
      observed_during_eval := S.read s);
  K.run_for k 10;
  Alcotest.(check int) "read before update" 0 !observed_during_eval;
  Alcotest.(check int) "read after update" 7 (S.read s)

let test_change_notification () =
  let k = K.create () in
  let s = S.create k ~name:"s" 0 in
  let fires = ref 0 in
  K.subscribe_static (S.changed_event s) (fun () -> incr fires);
  K.add_startup k (fun () -> S.write s 1);
  K.schedule_at k 5 (fun () -> S.write s 1);
  (* same value: no change *)
  K.schedule_at k 9 (fun () -> S.write s 2);
  K.run_for k 20;
  Alcotest.(check int) "changes fired" 2 !fires

let test_clock_edges () =
  let k = K.create () in
  let clk = C.create k ~period_ps:10 () in
  let pos = ref 0 and neg = ref 0 in
  K.subscribe_static (C.posedge clk) (fun () -> incr pos);
  K.subscribe_static (C.negedge clk) (fun () -> incr neg);
  K.run_until k 100;
  (* Edges at 5,10,15,...,100: rising at 5,15,...,95 -> 10 each. *)
  Alcotest.(check int) "posedges" 10 !pos;
  Alcotest.(check int) "negedges" 10 !neg

let test_cthread_counts_cycles () =
  let k = K.create () in
  let clk = C.create k ~period_ps:10 () in
  let count = ref 0 in
  let _t =
    P.cthread k ~name:"counter" ~clock:clk (fun ctx ->
        let rec loop () =
          P.wait ctx;
          incr count;
          loop ()
        in
        loop ())
  in
  K.run_until k 102;
  (* rising edges at 5, 15, ..., 95 *)
  Alcotest.(check int) "one increment per rising edge" 10 !count

let test_cthread_reset_restart () =
  let k = K.create () in
  let clk = C.create k ~period_ps:10 () in
  let reset = S.create k ~name:"reset" true in
  let resets_seen = ref 0 and work = ref 0 in
  let th =
    P.cthread k ~name:"worker" ~clock:clk ~reset (fun ctx ->
        incr resets_seen;
        (* reset prologue, as in the paper's Figure 5 *)
        P.wait ctx;
        let rec loop () =
          incr work;
          P.wait ctx;
          loop ()
        in
        loop ())
  in
  (* Hold reset for 3 rising edges, then release. *)
  K.schedule_at k 32 (fun () -> S.write reset false);
  K.run_until k 100;
  Alcotest.(check bool) "restarted at least twice" true (!resets_seen >= 3);
  Alcotest.(check bool) "worked after release" true (!work > 0);
  Alcotest.(check int) "thread restart count matches" (!resets_seen - 1)
    (P.restarts th)

let test_wait_n_and_until () =
  let k = K.create () in
  let clk = C.create k ~period_ps:10 () in
  let flag = S.create k ~name:"flag" false in
  let t_wait3 = ref 0 and t_until = ref 0 in
  let _a =
    P.cthread k ~name:"wait3" ~clock:clk (fun ctx ->
        P.wait_n ctx 3;
        t_wait3 := K.now k)
  in
  let _b =
    P.cthread k ~name:"until" ~clock:clk (fun ctx ->
        P.wait_until ctx (fun () -> S.read flag);
        t_until := K.now k)
  in
  K.schedule_at k 41 (fun () -> S.write flag true);
  K.run_until k 200;
  (* Rising edges at 5,15,25: third edge at 25ps. *)
  Alcotest.(check int) "wait_n 3 edges" 25 !t_wait3;
  (* flag set at 41ps commits at 41; first edge observing it is 45. *)
  Alcotest.(check int) "wait_until sees flag" 45 !t_until

let test_method_sensitivity () =
  let k = K.create () in
  let a = S.create k ~name:"a" 0 and b = S.create k ~name:"b" 0 in
  let sum = S.create k ~name:"sum" 0 in
  let _m =
    P.method_ k ~name:"adder"
      ~sensitive:[ S.changed_event a; S.changed_event b ]
      (fun () -> S.write sum (S.read a + S.read b))
  in
  K.add_startup k (fun () -> S.write a 2);
  K.schedule_at k 10 (fun () -> S.write b 40);
  K.run_until k 20;
  Alcotest.(check int) "combinational result" 42 (S.read sum)

let test_async_thread () =
  let k = K.create () in
  let ev = K.make_event k "go" in
  let log = ref [] in
  let _t =
    P.thread k ~name:"tb" (fun ctx ->
        P.delay ctx 15;
        log := ("after delay", K.now k) :: !log;
        P.await_event ctx ev;
        log := ("after event", K.now k) :: !log)
  in
  K.schedule_at k 40 (fun () -> K.notify ev);
  K.run_until k 100;
  Alcotest.(check (list (pair string int)))
    "thread timeline"
    [ ("after event", 40); ("after delay", 15) ]
    !log

let test_stop () =
  let k = K.create () in
  let clk = C.create k ~period_ps:10 () in
  let count = ref 0 in
  let _t =
    P.cthread k ~name:"c" ~clock:clk (fun ctx ->
        let rec loop () =
          P.wait ctx;
          incr count;
          if !count = 3 then K.stop k;
          loop ()
        in
        loop ())
  in
  K.run_until k 10_000;
  Alcotest.(check int) "stopped at 3" 3 !count;
  Alcotest.(check bool) "time did not run away" true (K.now k < 100)

let test_thread_termination () =
  let k = K.create () in
  let clk = C.create k ~period_ps:10 () in
  let t =
    P.cthread k ~name:"finite" ~clock:clk (fun ctx ->
        P.wait ctx;
        P.wait ctx)
  in
  K.run_until k 200;
  Alcotest.(check bool) "terminated" true (P.terminated t)

let test_vcd_output () =
  let k = K.create () in
  let clk = C.create k ~period_ps:10 () in
  let data = S.create k ~name:"data" (Bitvec.of_int ~width:4 0) in
  let vcd = Sim.Vcd.create k ~top:"tb" () in
  Sim.Vcd.trace_bool vcd (C.signal clk);
  Sim.Vcd.trace_bitvec vcd data;
  K.schedule_at k 12 (fun () -> S.write data (Bitvec.of_int ~width:4 9));
  K.run_until k 40;
  let doc = Sim.Vcd.contents vcd in
  Alcotest.(check int) "two signals" 2 (Sim.Vcd.signal_count vcd);
  Alcotest.(check bool) "header" true
    (String.length doc > 0
    && String.sub doc 0 5 = "$date");
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "var decl for data" true
    (contains "$var wire 4" doc);
  Alcotest.(check bool) "value change to 9" true (contains "b1001" doc);
  Alcotest.(check bool) "timestamped" true (contains "#12" doc)

let test_notify_after () =
  let k = K.create () in
  let ev = K.make_event k "timed" in
  let fired_at = ref (-1) in
  K.subscribe_static ev (fun () -> fired_at := K.now k);
  K.add_startup k (fun () -> K.notify_after ev 37);
  K.run_until k 100;
  Alcotest.(check int) "timed notification" 37 !fired_at

let test_subscribe_once_consumed () =
  let k = K.create () in
  let ev = K.make_event k "once" in
  let count = ref 0 in
  K.subscribe_once ev (fun () -> incr count);
  K.add_startup k (fun () -> K.notify ev);
  K.schedule_at k 10 (fun () -> K.notify ev);
  K.run_until k 50;
  Alcotest.(check int) "fired exactly once" 1 !count

let test_run_for_advances_relative () =
  let k = K.create () in
  K.schedule_at k 5 (fun () -> ());
  K.run_for k 20;
  Alcotest.(check int) "now = 20" 20 (K.now k);
  K.run_for k 15;
  Alcotest.(check int) "now = 35" 35 (K.now k)

let test_clock_of_freq () =
  let k = K.create () in
  let clk = C.of_freq_mhz k 66.0 in
  (* 66 MHz = 15151 ps period (rounded) *)
  Alcotest.(check bool) "period close to 15.15 ns" true
    (abs (C.period_ps clk - 15151) <= 1);
  K.run_until k 1_000_000;
  Alcotest.(check int) "cycles elapsed" (1_000_000 / C.period_ps clk)
    (C.cycles_elapsed clk k)

let test_timed_queue_insertion_order () =
  (* Events scheduled for the same instant must fire in insertion order,
     including across the timed queue's internal heap growth (the
     initial capacity is 64; schedule several hundred).  Also mixes in
     later-time events posted first, which must not jump the queue. *)
  let k = K.create () in
  let n = 300 in
  let log = ref [] in
  K.schedule_at k 20 (fun () -> log := (-1) :: !log);
  for i = 0 to n - 1 do
    K.schedule_at k 10 (fun () -> log := i :: !log)
  done;
  K.run_until k 50;
  let fired = List.rev !log in
  Alcotest.(check int) "all fired" (n + 1) (List.length fired);
  Alcotest.(check (list int)) "same-time events in insertion order"
    (List.init n (fun i -> i))
    (List.filteri (fun idx _ -> idx < n) fired);
  Alcotest.(check int) "later time fires last" (-1) (List.nth fired n)

let test_timed_queue_heavy_use () =
  (* Create-then-heavy-use: a fresh kernel fed far more timed events
     than the queue's initial capacity, at descending times, must still
     release them in time order. *)
  let k = K.create () in
  let order = ref [] in
  for i = 999 downto 0 do
    K.schedule_at k (i + 1) (fun () -> order := K.now k :: !order)
  done;
  K.run_until k 2_000;
  let fired = List.rev !order in
  Alcotest.(check int) "all fired" 1000 (List.length fired);
  Alcotest.(check (list int)) "time order" (List.init 1000 (fun i -> i + 1))
    fired

let test_delta_determinism () =
  (* Two runs of the same stochastic-free model must agree exactly. *)
  let run () =
    let k = K.create () in
    let clk = C.create k ~period_ps:14 () in
    let x = S.create k ~name:"x" 0 in
    let _t =
      P.cthread k ~name:"t" ~clock:clk (fun ctx ->
          let rec loop () =
            P.wait ctx;
            S.write x (S.read x + 3);
            loop ()
          in
          loop ())
    in
    K.run_until k 1000;
    (S.read x, K.delta_count k, K.process_runs k)
  in
  let a = run () and b = run () in
  Alcotest.(check (triple int int int)) "deterministic" a b

let suite =
  [
    Alcotest.test_case "signal update phase" `Quick test_signal_update_phase;
    Alcotest.test_case "change notification" `Quick test_change_notification;
    Alcotest.test_case "clock edges" `Quick test_clock_edges;
    Alcotest.test_case "cthread counts cycles" `Quick test_cthread_counts_cycles;
    Alcotest.test_case "cthread reset restart" `Quick test_cthread_reset_restart;
    Alcotest.test_case "wait_n and wait_until" `Quick test_wait_n_and_until;
    Alcotest.test_case "method sensitivity" `Quick test_method_sensitivity;
    Alcotest.test_case "async thread" `Quick test_async_thread;
    Alcotest.test_case "kernel stop" `Quick test_stop;
    Alcotest.test_case "thread termination" `Quick test_thread_termination;
    Alcotest.test_case "vcd output" `Quick test_vcd_output;
    Alcotest.test_case "notify after" `Quick test_notify_after;
    Alcotest.test_case "subscribe once" `Quick test_subscribe_once_consumed;
    Alcotest.test_case "run_for relative" `Quick test_run_for_advances_relative;
    Alcotest.test_case "clock of freq" `Quick test_clock_of_freq;
    Alcotest.test_case "timed queue insertion order" `Quick
      test_timed_queue_insertion_order;
    Alcotest.test_case "timed queue heavy use" `Quick
      test_timed_queue_heavy_use;
    Alcotest.test_case "determinism" `Quick test_delta_determinism;
  ]

let () = Alcotest.run "sim" [ ("sim", suite) ]
