(* Hierarchy-preserving lowering: region/hint annotations, the module
   memo-cache, and the per-module breakdowns that ride on them. *)

open Hdl
open Builder.Dsl
module N = Backend.Netlist

(* A leaf with a memory: lowering produces decoded write enables and a
   read-mux tree, all of which must land in the instance's region. *)
let regfile_leaf () =
  let b = Builder.create "rf_leaf" in
  let we = Builder.input b "we" 1 in
  let waddr = Builder.input b "waddr" 2 in
  let wdata = Builder.input b "wdata" 4 in
  let raddr = Builder.input b "raddr" 2 in
  let rdata = Builder.output b "rdata" 4 in
  let mem = Builder.memory b "mem" ~width:4 ~depth:4 in
  Builder.sync b "write" [ when_ (v we) [ awrite mem (v waddr) (v wdata) ] ];
  Builder.comb b "read" [ rdata <-- aread mem (v raddr) ];
  Builder.finish b

(* Two instances of the same leaf plus top-level glue: the leaf must be
   lowered once (second instance hits the cache) and each instance's
   cells tagged with its own path. *)
let hier_design () =
  let leaf = regfile_leaf () in
  let b = Builder.create "rf_pair" in
  let we = Builder.input b "we" 1 in
  let waddr = Builder.input b "waddr" 2 in
  let wdata = Builder.input b "wdata" 4 in
  let raddr = Builder.input b "raddr" 2 in
  let r0 = Builder.output b "r0" 4 in
  let r1 = Builder.output b "r1" 4 in
  let both = Builder.output b "both" 4 in
  let m0 = Builder.wire b "m0" 4 in
  let m1 = Builder.wire b "m1" 4 in
  Builder.instantiate b ~name:"u_rf0" leaf
    [ ("we", we); ("waddr", waddr); ("wdata", wdata); ("raddr", raddr);
      ("rdata", m0) ];
  Builder.instantiate b ~name:"u_rf1" leaf
    [ ("we", we); ("waddr", waddr); ("wdata", wdata); ("raddr", raddr);
      ("rdata", m1) ];
  Builder.comb b "mix"
    [ r0 <-- v m0; r1 <-- v m1; both <-- (v m0 ^: v m1) ];
  Builder.finish b

let test_hier_memory_lowering () =
  let design = hier_design () in
  let nl = Backend.Lower.lower design in
  (match Backend.Equiv.ir_vs_netlist ~cycles:400 design nl with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m);
  let area = Backend.Area.analyze nl in
  Alcotest.(check int) "2x16 state bits" 32 area.Backend.Area.n_ffs;
  Alcotest.(check (list string))
    "both instance regions present" [ "u_rf0"; "u_rf1" ]
    (List.sort compare (N.region_names nl));
  Alcotest.(check bool) "cells are region-tagged" true
    (N.region_table_size nl > 0)

let test_per_instance_breakdown () =
  let nl = Backend.Lower.lower (hier_design ()) in
  let rows = Backend.Area.by_module nl in
  let row path =
    match
      List.find_opt
        (fun (r : Backend.Area.module_row) -> r.Backend.Area.path = path)
        rows
    with
    | Some r -> r
    | None -> Alcotest.failf "no area row for %S" path
  in
  (* The two instances of the same leaf must cost about the same; the
     only allowed difference is shared constant cells, which the region
     tagging attributes to whichever instance was spliced first. *)
  let r0 = row "u_rf0" and r1 = row "u_rf1" in
  Alcotest.(check bool) "near-identical cell counts" true
    (abs (r0.Backend.Area.m_cells - r1.Backend.Area.m_cells) <= 4);
  Alcotest.(check int) "16 FFs each" 16 r0.Backend.Area.m_ffs;
  Alcotest.(check int) "16 FFs each (second instance)" 16
    r1.Backend.Area.m_ffs;
  Alcotest.(check int) "rows sum to the whole netlist"
    (N.cell_count nl)
    (List.fold_left (fun acc (r : Backend.Area.module_row) ->
         acc + r.Backend.Area.m_cells) 0 rows)

let test_regions_survive_opt () =
  let nl = Backend.Opt.optimize (Backend.Lower.lower (hier_design ())) in
  Alcotest.(check (list string))
    "regions survive optimization" [ "u_rf0"; "u_rf1" ]
    (List.sort compare (N.region_names nl));
  Alcotest.(check bool) "hints survive optimization" true
    (N.hint_table_size nl > 0);
  (* The simulator's labels pick the hierarchical descriptions up. *)
  let labels = Backend.Nl_sim.Sched.net_labels nl in
  Alcotest.(check bool) "a u_rf0-prefixed label exists" true
    (Array.exists
       (fun l -> String.length l > 6 && String.sub l 0 6 = "u_rf0.")
       labels)

let test_regions_survive_techmap_pnr () =
  let nl = Backend.Opt.optimize (Backend.Lower.lower (hier_design ())) in
  let mapped = Backend.Techmap.map nl in
  let rows = Backend.Techmap.by_module mapped in
  let luts = List.fold_left (fun acc (_, l, _) -> acc + l) 0 rows in
  let ffs = List.fold_left (fun acc (_, _, f) -> acc + f) 0 rows in
  Alcotest.(check int) "techmap rows account for every LUT"
    (Backend.Techmap.lut_count mapped) luts;
  Alcotest.(check int) "techmap rows account for every FF"
    (Backend.Techmap.ff_count mapped) ffs;
  Alcotest.(check bool) "an instance path survives mapping" true
    (List.exists (fun (p, _, _) -> p = "u_rf0") rows);
  let placed = Backend.Pnr.place ~moves:2_000 mapped in
  let prow = Backend.Pnr.by_module placed in
  Alcotest.(check int) "placement rows account for every core element"
    (Backend.Techmap.lut_count mapped + Backend.Techmap.ff_count mapped)
    (List.fold_left (fun acc (_, n) -> acc + n) 0 prow);
  Alcotest.(check bool) "an instance path survives placement" true
    (List.exists (fun (p, _) -> p = "u_rf1") prow)

let test_memo_cache_equivalence () =
  let design = hier_design () in
  Backend.Lower.clear_cache ();
  let h0, m0 = Backend.Lower.cache_stats () in
  let cold = Backend.Lower.lower design in
  let h1, m1 = Backend.Lower.cache_stats () in
  (* Two instances of one leaf: the second splice must hit the cache. *)
  Alcotest.(check bool) "shared leaf hits within one lowering" true
    (h1 - h0 >= 1);
  Alcotest.(check bool) "cold run misses" true (m1 - m0 >= 2);
  let warm = Backend.Lower.lower design in
  let h2, m2 = Backend.Lower.cache_stats () in
  Alcotest.(check bool) "warm run is a pure hit" true
    (h2 > h1 && m2 = m1);
  Alcotest.(check bool) "warm run shares the cached netlist" true
    (cold == warm);
  (* Memoized lowering must be formally equivalent to cold lowering. *)
  Backend.Lower.clear_cache ();
  let recold = Backend.Lower.lower design in
  (match Backend.Cec.check cold recold with
  | Backend.Cec.Proved -> ()
  | v -> Alcotest.failf "memoized vs cold: %a" Backend.Cec.pp_verdict v);
  (* And bit-identical under simulation. *)
  match
    Backend.Equiv.differential ~cycles:200
      [
        (fun () -> Backend.Nl_engine.create ~label:"cold" cold);
        (fun () -> Backend.Nl_engine.create ~label:"recold" recold);
      ]
  with
  | Ok _ -> ()
  | Error d -> Alcotest.failf "%a" Backend.Equiv.pp_divergence d

let test_trace_hier_scopes () =
  let nl = Backend.Lower.lower (hier_design ()) in
  let e = Backend.Nl_engine.create ~label:"nl" nl in
  Alcotest.(check bool) "engine exposes hierarchical probes" true
    (List.exists
       (fun (name, _) -> String.length name > 6 && String.sub name 0 6 = "u_rf0.")
       (Engine.probes e));
  let tr = Engine.Trace.create [ e ] in
  Engine.Trace.sample tr;
  let doc = Engine.Trace.contents tr in
  let contains needle =
    let n = String.length needle and h = String.length doc in
    let rec go i = i + n <= h && (String.sub doc i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "VCD has the engine scope" true
    (contains "$scope module nl $end");
  Alcotest.(check bool) "VCD has a nested instance scope" true
    (contains "$scope module u_rf0 $end")

let test_fault_site_names () =
  let nl = Backend.Lower.lower (hier_design ()) in
  (* Pick a region-tagged net so the site carries the instance path. *)
  let site_net =
    let found = ref None in
    List.iter
      (fun (c : N.cell) ->
        if !found = None && N.region_of nl c.N.out = "u_rf1" then
          found := Some c.N.out)
      (N.cells nl);
    match !found with Some n -> n | None -> Alcotest.fail "no u_rf1 cell"
  in
  let campaign =
    Backend.Equiv.fault_campaign ~cycles:50 ~shrink:false nl
      [ { Backend.Equiv.fault_net = site_net; stuck_at = true } ]
  in
  match campaign.Backend.Equiv.fault_results with
  | [ r ] ->
      Alcotest.(check bool) "site names the owning instance" true
        (String.length r.Backend.Equiv.site > 6
        && String.sub r.Backend.Equiv.site 0 6 = "u_rf1.")
  | _ -> Alcotest.fail "one fault expected"

let suite =
  [
    Alcotest.test_case "hierarchical memory lowering" `Quick
      test_hier_memory_lowering;
    Alcotest.test_case "per-instance breakdown" `Quick
      test_per_instance_breakdown;
    Alcotest.test_case "regions survive opt" `Quick test_regions_survive_opt;
    Alcotest.test_case "regions survive techmap+pnr" `Quick
      test_regions_survive_techmap_pnr;
    Alcotest.test_case "memo cache equivalence" `Quick
      test_memo_cache_equivalence;
    Alcotest.test_case "hierarchical trace scopes" `Quick
      test_trace_hier_scopes;
    Alcotest.test_case "fault site names" `Quick test_fault_site_names;
  ]

let () = Alcotest.run "hier" [ ("hier", suite) ]
