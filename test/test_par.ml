(* The multicore campaign runtime: deterministic shard ordering on the
   domain pool, failure provenance and cancellation, chunking, and the
   determinism contract of the sharded campaign workloads — fault
   campaigns, multi-seed coverage merges and differential sweeps must
   be bit-identical at jobs=1 and jobs=4.  Plus the domain-safety of
   the observability substrate the shards write into. *)

open Hdl
open Builder.Dsl
module N = Backend.Netlist

let counter_design () =
  let b = Builder.create "counter" in
  let reset = Builder.input b "reset" 1 in
  let count = Builder.output b "count" 8 in
  Builder.sync b "tick"
    [
      if_ (v reset)
        [ count <-- c ~width:8 0 ]
        [ count <-- (v count +: c ~width:8 1) ];
    ];
  Builder.finish b

(* ------------------------------------------------------------------ *)
(* Chunking                                                            *)

let test_chunks () =
  let xs = List.init 17 Fun.id in
  let parts = Par.chunks ~shards:4 xs in
  Alcotest.(check int) "shard count" 4 (Array.length parts);
  Alcotest.(check (list int))
    "concatenation restores the list" xs
    (List.concat (Array.to_list parts));
  let sizes = Array.to_list (Array.map List.length parts) in
  let mn = List.fold_left min max_int sizes
  and mx = List.fold_left max 0 sizes in
  Alcotest.(check bool) "balanced within one" true (mx - mn <= 1);
  Alcotest.(check (list (list int)))
    "more shards than items clamp to singletons"
    [ [ 1 ]; [ 2 ]; [ 3 ] ]
    (Array.to_list (Par.chunks ~shards:5 [ 1; 2; 3 ]));
  Alcotest.(check (list (list int)))
    "empty list yields one empty chunk" [ [] ]
    (Array.to_list (Par.chunks ~shards:2 []))

(* ------------------------------------------------------------------ *)
(* Pool map: ordering, determinism, failure propagation               *)

let test_map_order () =
  let expect = Array.init 100 (fun i -> i * i) in
  Alcotest.(check (array int))
    "jobs=4 results in index order" expect
    (Par.map ~jobs:4 (fun i -> i * i) 100);
  Alcotest.(check (array int))
    "jobs=1 identical" expect
    (Par.map ~jobs:1 (fun i -> i * i) 100);
  Alcotest.(check (array int)) "empty map" [||] (Par.map ~jobs:4 (fun i -> i) 0)

let test_failure_provenance () =
  let boom jobs =
    try
      ignore
        (Par.map ~jobs
           ~label:(Printf.sprintf "shard-%d")
           (fun i -> if i = 3 then failwith "boom" else i)
           8);
      Alcotest.fail "expected Shard_failure"
    with Par.Shard_failure { shard; label; exn; _ } ->
      Alcotest.(check int) "failing shard index" 3 shard;
      Alcotest.(check string) "failing shard label" "shard-3" label;
      Alcotest.(check bool)
        "original exception preserved" true
        (exn = Failure "boom")
  in
  boom 1;
  boom 4

let test_serial_cancellation () =
  (* The serial path runs shards in order and stops at the failure:
     shard 3 of 100 fails, so exactly shards 0..3 execute. *)
  let ran = ref 0 in
  (try
     ignore
       (Par.map ~jobs:1
          (fun i ->
            incr ran;
            if i = 3 then failwith "stop")
          100)
   with Par.Shard_failure _ -> ());
  Alcotest.(check int) "remaining shards cancelled" 4 !ran

let test_nested_map () =
  (* A map issued from inside a shard must not deadlock the pool: it
     falls back to inline serial execution. *)
  let outer =
    Par.map ~jobs:2
      (fun i -> Array.fold_left ( + ) 0 (Par.map ~jobs:2 (fun j -> i + j) 10))
      6
  in
  Alcotest.(check (array int))
    "nested maps compute serially" (Array.init 6 (fun i -> (10 * i) + 45))
    outer

(* ------------------------------------------------------------------ *)
(* Sharded fault campaign determinism                                  *)

let test_campaign_jobs_identity () =
  let nl = Backend.Lower.lower (counter_design ()) in
  let count = List.assoc "count" (N.outputs nl) in
  let faults =
    List.init 6 (fun i ->
        { Backend.Equiv.fault_net = count.(i); stuck_at = i mod 2 = 0 })
  in
  let run jobs =
    Backend.Equiv.fault_campaign ~cycles:300 ~seed:7 ~shrink:false ~jobs nl
      faults
  in
  let serial = run 1 and par = run 4 in
  (* shrink:false keeps the results plain data, so structural equality
     covers every per-fault field including the campaign-wide lane. *)
  Alcotest.(check bool)
    "fault results identical at jobs 1 and 4" true
    (serial.Backend.Equiv.fault_results = par.Backend.Equiv.fault_results);
  Alcotest.(check int)
    "detected totals agree" serial.Backend.Equiv.faults_detected
    par.Backend.Equiv.faults_detected;
  Alcotest.(check int)
    "campaign cycles agree (max over shards)"
    serial.Backend.Equiv.campaign_cycles par.Backend.Equiv.campaign_cycles;
  Alcotest.(check (list int))
    "lanes are campaign-global positions"
    (List.init 6 (fun i -> i + 1))
    (List.map
       (fun (r : Backend.Equiv.fault_result) -> r.lane)
       par.Backend.Equiv.fault_results)

let test_campaign_shrunk_identity () =
  (* With shrinking on, the reproducer windows must also match across
     jobs — compared field-by-field (the causality chains carry global
     event sequence numbers, which are not part of the contract). *)
  let nl = Backend.Lower.lower (counter_design ()) in
  let count = List.assoc "count" (N.outputs nl) in
  let faults =
    [
      { Backend.Equiv.fault_net = count.(0); stuck_at = true };
      { Backend.Equiv.fault_net = count.(2); stuck_at = false };
    ]
  in
  let run jobs =
    Backend.Equiv.fault_campaign ~cycles:300 ~seed:7 ~jobs nl faults
  in
  let project (r : Backend.Equiv.fault_result) =
    let window d =
      Array.to_list
        (Array.map
           (List.map (fun (name, bv) -> (name, Bitvec.to_int bv)))
           d.Backend.Equiv.window)
    in
    ( r.site,
      r.lane,
      r.detected_at,
      r.detect_port,
      Option.map
        (fun d -> (d.Backend.Equiv.window_start, window d))
        r.shrunk )
  in
  let serial = run 1 and par = run 2 in
  Alcotest.(check bool)
    "shrunk reproducers identical at jobs 1 and 2" true
    (List.map project serial.Backend.Equiv.fault_results
    = List.map project par.Backend.Equiv.fault_results)

(* ------------------------------------------------------------------ *)
(* Multi-seed coverage merge determinism                               *)

let cover_db_for_seed nl seed =
  let sim = Backend.Nl_sim.create nl in
  Backend.Nl_sim.enable_toggle_cover sim;
  let rng = Random.State.make [| seed |] in
  Backend.Nl_sim.set_input_int sim "reset" 1;
  Backend.Nl_sim.step sim;
  for _ = 1 to 50 do
    Backend.Nl_sim.set_input_int sim "reset"
      (if Random.State.int rng 8 = 0 then 1 else 0);
    Backend.Nl_sim.step sim
  done;
  let tg =
    match Backend.Nl_sim.toggle_cover sim with
    | Some tg -> tg
    | None -> assert false
  in
  Cover.Db.make
    ~toggles:(Cover.Db.toggle_entries tg)
    ~run:(Printf.sprintf "seed%d" seed) ()

let test_multi_seed_cover_identity () =
  let nl = Backend.Lower.lower (counter_design ()) in
  let seeds = [ 0; 1; 2; 3; 4; 5 ] in
  let merged jobs =
    match Par.map_list ~jobs (cover_db_for_seed nl) seeds with
    | [] -> assert false
    | d :: rest -> List.fold_left Cover.Db.merge d rest
  in
  let s = Obs.Json.to_string (Cover.Db.to_json (merged 1)) in
  let p = Obs.Json.to_string (Cover.Db.to_json (merged 4)) in
  Alcotest.(check string) "merged coverage DB byte-identical" s p

(* ------------------------------------------------------------------ *)
(* Differential sweep                                                  *)

let test_differential_sweep () =
  let design = counter_design () in
  let nl = Backend.Lower.lower design in
  let factories =
    [
      (fun () -> Rtl_engine.create ~label:"rtl" design);
      (fun () -> Backend.Nl_engine.create ~label:"gates" nl);
    ]
  in
  let results =
    Backend.Equiv.differential_sweep ~cycles:60 ~jobs:4
      ~seeds:[ 11; 12; 13; 14 ] factories
  in
  Alcotest.(check (list int))
    "results in seed order" [ 11; 12; 13; 14 ]
    (List.map fst results);
  List.iter
    (fun (seed, r) ->
      match r with
      | Ok n -> Alcotest.(check int) (Printf.sprintf "seed %d cycles" seed) 60 n
      | Error d ->
          Alcotest.failf "seed %d diverged: %a" seed
            Backend.Equiv.pp_divergence d)
    results

let test_differential_sweep_divergence () =
  let design = counter_design () in
  let nl = Backend.Lower.lower design in
  let factories =
    [
      (fun () -> Rtl_engine.create ~label:"rtl" design);
      (fun () ->
        Engine.inject_fault ~port:"count"
          (Backend.Nl_engine.create ~label:"gates:faulty" nl));
    ]
  in
  let results =
    Backend.Equiv.differential_sweep ~cycles:60 ~shrink:false ~jobs:2
      ~seeds:[ 5; 6 ] factories
  in
  List.iter
    (fun (seed, r) ->
      match r with
      | Ok _ -> Alcotest.failf "seed %d missed the injected fault" seed
      | Error d ->
          Alcotest.(check string)
            (Printf.sprintf "seed %d localizes the port" seed)
            "count" d.Backend.Equiv.first.Backend.Equiv.port)
    results

(* ------------------------------------------------------------------ *)
(* Cover.Db.merge run-provenance dedup (regression)                    *)

let test_merge_runs_dedup () =
  let db run = Cover.Db.make ~run () in
  let a = db "a" and b = db "b" in
  let ab = Cover.Db.merge a b in
  Alcotest.(check (list string))
    "repeated merge does not duplicate provenance" [ "a"; "b" ]
    (Cover.Db.merge ab b).Cover.Db.runs;
  Alcotest.(check (list string))
    "self merge keeps one label" [ "a" ]
    (Cover.Db.merge a a).Cover.Db.runs;
  (* A database carrying duplicates from an older file dedups on the
     way through merge, preserving first-occurrence order. *)
  let dirty = { ab with Cover.Db.runs = [ "a"; "b"; "a" ] } in
  Alcotest.(check (list string))
    "within-side duplicates collapse" [ "a"; "b"; "c" ]
    (Cover.Db.merge dirty (db "c")).Cover.Db.runs

(* ------------------------------------------------------------------ *)
(* Observability substrate under domains                               *)

let test_perf_atomic () =
  let ctr = Perf.counter "par.test.hits" in
  Perf.reset ctr;
  ignore
    (Par.map ~jobs:4
       (fun _ ->
         for _ = 1 to 100 do
           Perf.incr ctr
         done)
       40);
  Alcotest.(check int) "no lost increments across domains" 4000 (Perf.value ctr)

let test_hist_domains () =
  Obs.Hist.enable ();
  let h = Obs.Hist.histogram "par.test.latency" in
  Obs.Hist.reset h;
  ignore
    (Par.map ~jobs:4
       (fun i ->
         for _ = 1 to 50 do
           Obs.Hist.observe h (float_of_int (i + 1))
         done)
       8);
  Alcotest.(check int)
    "observations from every domain merge" 400 (Obs.Hist.count h);
  Alcotest.(check bool) "max seen" true (Obs.Hist.max_value h >= 8.0);
  Obs.Hist.reset h;
  Alcotest.(check int) "reset clears every shadow" 0 (Obs.Hist.count h)

let suite =
  [
    Alcotest.test_case "chunks" `Quick test_chunks;
    Alcotest.test_case "map ordering" `Quick test_map_order;
    Alcotest.test_case "failure provenance" `Quick test_failure_provenance;
    Alcotest.test_case "serial cancellation" `Quick test_serial_cancellation;
    Alcotest.test_case "nested map" `Quick test_nested_map;
    Alcotest.test_case "campaign jobs identity" `Quick
      test_campaign_jobs_identity;
    Alcotest.test_case "campaign shrunk identity" `Quick
      test_campaign_shrunk_identity;
    Alcotest.test_case "multi-seed cover identity" `Quick
      test_multi_seed_cover_identity;
    Alcotest.test_case "differential sweep" `Quick test_differential_sweep;
    Alcotest.test_case "sweep divergence" `Quick
      test_differential_sweep_divergence;
    Alcotest.test_case "merge runs dedup" `Quick test_merge_runs_dedup;
    Alcotest.test_case "perf counters atomic" `Quick test_perf_atomic;
    Alcotest.test_case "histograms across domains" `Quick test_hist_domains;
  ]

let () = Alcotest.run "par" [ ("par", suite) ]
