(* Tests for the synthesis tool chain: analyzer, behavioral synthesis,
   flows, and the effort metrics. *)

open Hdl
module B = Synth.Behavioral

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* dfg: out = (a+b) * (a-b) + (a*b) over 8 bits *)
let sample_dfg () =
  let g = B.create ~name:"poly_eval" ~inputs:[ ("a", 8); ("b", 8) ] in
  let s = B.node g B.Add [ B.Input "a"; B.Input "b" ] in
  let d = B.node g B.Sub [ B.Input "a"; B.Input "b" ] in
  let p = B.node g B.Mul [ B.Node s; B.Node d ] in
  let q = B.node g B.Mul [ B.Input "a"; B.Input "b" ] in
  let r = B.node g B.Add [ B.Node p; B.Node q ] in
  B.output g "result" (B.Node r);
  g


let test_asap_schedule () =
  let g = sample_dfg () in
  let s = B.asap g in
  Alcotest.(check int) "critical path states" 3 (B.latency s);
  (* add, sub and the independent mul are all input-ready *)
  Alcotest.(check int) "three ops in state 0" 3
    (List.length (B.ops_in_state s 0))

let test_list_schedule_constrained () =
  let g = sample_dfg () in
  (* one unit of each kind: adds serialize, muls serialize *)
  let s = B.list_schedule g ~resources:(fun _ -> 1) in
  Alcotest.(check bool) "longer than asap" true (B.latency s >= 3);
  (* no state uses two units of one kind *)
  let g_ops = [| B.Add; B.Sub; B.Mul; B.Mul; B.Add |] in
  for st = 0 to B.latency s - 1 do
    let ops = B.ops_in_state s st in
    List.iter
      (fun kind ->
        let same = List.filter (fun i -> g_ops.(i) = kind) ops in
        Alcotest.(check bool)
          (Printf.sprintf "state %d: one unit of each kind" st)
          true
          (List.length same <= 1))
      [ B.Add; B.Sub; B.Mul ]
  done

let run_behavioral design ~a ~b =
  let sim = Rtl_sim.create design in
  Rtl_sim.set_input_int sim "a" a;
  Rtl_sim.set_input_int sim "b" b;
  Rtl_sim.set_input_int sim "start" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "start" 0;
  let rec wait n =
    if n > 100 then Alcotest.fail "behavioral module never finished";
    if Rtl_sim.get_int sim "done" = 1 then Rtl_sim.get_int sim "result"
    else begin
      Rtl_sim.step sim;
      wait (n + 1)
    end
  in
  wait 0

let test_behavioral_module_asap () =
  let g = sample_dfg () in
  let design = B.to_module g (B.asap g) in
  List.iter
    (fun (a, b) ->
      Alcotest.(check int)
        (Printf.sprintf "f(%d,%d)" a b)
        ((((a + b) * (a - b)) + (a * b)) land 0xff)
        (run_behavioral design ~a ~b))
    [ (5, 3); (200, 100); (0, 0); (255, 255); (17, 4) ]

let test_behavioral_module_constrained () =
  let g = sample_dfg () in
  let design = B.to_module g (B.list_schedule g ~resources:(fun _ -> 1)) in
  List.iter
    (fun (a, b) ->
      Alcotest.(check int)
        (Printf.sprintf "f(%d,%d)" a b)
        ((((a + b) * (a - b)) + (a * b)) land 0xff)
        (run_behavioral design ~a ~b))
    [ (5, 3); (200, 100); (255, 1) ]

let test_behavioral_resource_sharing_area () =
  (* Two independent multiplications: ASAP instantiates two multiplier
     units; constraining to one shares a single unit through input
     muxes, trading combinational area for latency. *)
  let g = B.create ~name:"two_muls" ~inputs:[ ("a", 8); ("b", 8); ("c2", 8); ("d", 8) ] in
  let m1 = B.node g B.Mul [ B.Input "a"; B.Input "b" ] in
  let m2 = B.node g B.Mul [ B.Input "c2"; B.Input "d" ] in
  let r = B.node g B.Add [ B.Node m1; B.Node m2 ] in
  B.output g "result" (B.Node r);
  let parallel = B.to_module g (B.asap g) in
  let serial = B.to_module g (B.list_schedule g ~resources:(fun _ -> 1)) in
  let area m =
    (Backend.Area.analyze (Backend.Opt.optimize (Backend.Lower.lower m)))
      .Backend.Area.combinational
  in
  Alcotest.(check bool) "sharing saves combinational area" true
    (area serial < area parallel);
  Alcotest.(check bool) "sharing costs latency" true
    (B.latency (B.list_schedule g ~resources:(fun _ -> 1)) > B.latency (B.asap g))

let test_behavioral_netlist_equiv () =
  let g = sample_dfg () in
  let design = B.to_module g (B.asap g) in
  let nl = Backend.Lower.lower design in
  match Backend.Equiv.ir_vs_netlist ~cycles:400 design nl with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m

(* Property: random dataflow graphs scheduled under random resource
   budgets compute the same function as a direct evaluation of the
   graph. *)
let prop_random_dfg =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:30 ~name:"random dfg schedules are correct"
       QCheck2.Gen.(
         triple (int_range 1 10)
           (list_size (return 12) (int_range 0 1000))
           (int_range 1 3))
       (fun (n_ops, choices, budget) ->
         let g =
           B.create ~name:"rand_dfg" ~inputs:[ ("a", 8); ("b", 8); ("c2", 8) ]
         in
         let operands = ref [ B.Input "a"; B.Input "b"; B.Input "c2" ] in
         let pick k = List.nth !operands (k mod List.length !operands) in
         let kinds = [| B.Add; B.Sub; B.Mul; B.And; B.Or; B.Xor |] in
         let rec build i remaining =
           match remaining with
           | [] -> ()
           | choice :: rest when i < n_ops ->
               let kind = kinds.(choice mod Array.length kinds) in
               let x = pick choice and y = pick (choice / 7) in
               let id = B.node g kind [ x; y ] in
               operands := B.Node id :: !operands;
               build (i + 1) rest
           | _ -> ()
         in
         build 0 choices;
         let out_operand = List.hd !operands in
         B.output g "y" out_operand;
         let sched = B.list_schedule g ~resources:(fun _ -> budget) in
         let m = B.to_module g sched in
         let inputs = [ ("a", 173); ("b", 41); ("c2", 200) ] in
         (* reference: replay the same construction over plain ints *)
         let values = ref [ 173; 41; 200 ] in
         let pickv k = List.nth !values (k mod List.length !values) in
         let rec replay i remaining =
           match remaining with
           | [] -> ()
           | choice :: rest when i < n_ops ->
               let kind = kinds.(choice mod Array.length kinds) in
               let vx = pickv choice and vy = pickv (choice / 7) in
               let r =
                 (match kind with
                 | B.Add -> vx + vy
                 | B.Sub -> vx - vy
                 | B.Mul -> vx * vy
                 | B.And -> vx land vy
                 | B.Or -> vx lor vy
                 | B.Xor -> vx lxor vy
                 | B.Mux -> 0)
                 land 0xff
               in
               values := r :: !values;
               replay (i + 1) rest
           | _ -> ()
         in
         replay 0 choices;
         let expected = List.hd !values in
         let sim = Rtl_sim.create m in
         List.iter (fun (n, v) -> Rtl_sim.set_input_int sim n v) inputs;
         Rtl_sim.set_input_int sim "start" 1;
         Rtl_sim.step sim;
         Rtl_sim.set_input_int sim "start" 0;
         let guard = ref 0 in
         while Rtl_sim.get_int sim "done" = 0 && !guard < 100 do
           Rtl_sim.step sim;
           incr guard
         done;
         Rtl_sim.get_int sim "y" = expected))

let test_analyzer_report () =
  let top = Expocu.Expocu_top.rtl_top () in
  let entries = Synth.Analyzer.analyze top in
  Alcotest.(check bool) "root plus six components" true
    (List.length entries >= 7);
  let report = Synth.Analyzer.report top in
  Alcotest.(check bool) "mentions histogram" true
    (contains "histogram_rtl" report);
  Alcotest.(check bool) "mentions i2c" true (contains "i2c_vhdl" report);
  Alcotest.(check bool) "state bits positive" true
    (Synth.Analyzer.total_state_bits top > 100)

let test_flow_runs () =
  let design = Expocu.Sync.rtl_module () in
  let r = Synth.Flow.run Synth.Flow.Vhdl design in
  Alcotest.(check bool) "area positive" true (r.Synth.Flow.area.Backend.Area.total > 0.0);
  Alcotest.(check bool) "fmax finite" true
    (r.Synth.Flow.timing.Backend.Timing.fmax_mhz > 0.0);
  Alcotest.(check bool) "vhdl artifact" true
    (List.exists (fun (n, _) -> n = "sync_rtl.vhd") r.Synth.Flow.intermediate);
  let r2 = Synth.Flow.run Synth.Flow.Osss (Expocu.Sync.osss_module ()) in
  Alcotest.(check bool) "resolved systemc artifact" true
    (List.exists
       (fun (n, _) -> n = "sync_osss_resolved_flat.cpp")
       r2.Synth.Flow.intermediate);
  Alcotest.(check bool) "pre-flatten vhdl artifact" true
    (List.exists (fun (n, _) -> n = "sync_rtl.vhd") r.Synth.Flow.intermediate);
  Alcotest.(check bool) "post-flatten vhdl artifact" true
    (List.exists
       (fun (n, _) -> n = "sync_rtl_flat.vhd")
       r.Synth.Flow.intermediate);
  Alcotest.(check bool) "pre-flatten verilog in osss flow" true
    (List.exists (fun (n, _) -> n = "sync_osss.v") r2.Synth.Flow.intermediate);
  Alcotest.(check bool) "raw netlist artifact" true
    (List.exists
       (fun (n, _) -> n = "sync_osss_netlist_raw.v")
       r2.Synth.Flow.intermediate);
  Alcotest.(check bool) "summary text" true
    (contains "fmax" (Synth.Flow.summary r2))

let test_flow_pass_trace () =
  let r = Synth.Flow.run Synth.Flow.Vhdl (Expocu.Sync.rtl_module ()) in
  Alcotest.(check (list string)) "pass sequence"
    [ "check"; "flatten"; "emit-frontend"; "lower"; "opt"; "analyze" ]
    (List.map (fun p -> p.Synth.Flow.pass_name) r.Synth.Flow.passes);
  let opt =
    List.find
      (fun p -> p.Synth.Flow.pass_name = "opt")
      r.Synth.Flow.passes
  in
  (match
     ( Synth.Flow.pass_metric opt "before_cells",
       Synth.Flow.pass_metric opt "after_cells" )
   with
  | Some before, Some after ->
      Alcotest.(check bool) "opt shrinks or holds" true (after <= before);
      Alcotest.(check (float 0.0)) "raw cell count matches"
        (float_of_int r.Synth.Flow.raw_cells)
        before
  | _ -> Alcotest.fail "opt pass missing cell metrics");
  Alcotest.(check bool) "pass table renders deltas" true
    (contains "->" (Synth.Flow.pass_table r));
  Alcotest.(check bool) "summary embeds pass table" true
    (contains "opt" (Synth.Flow.summary r));
  (* every pass feeds the global Perf registry *)
  Alcotest.(check bool) "perf runs counter" true
    (Metrics.Perf.value (Metrics.Perf.counter "flow.opt.runs") > 0)

let test_flow_invariants_and_layout () =
  (* a design with no dead registers: CEC must prove the opt pass *)
  let b = Builder.create "invcnt" in
  let reset = Builder.input b "reset" 1 in
  let count = Builder.output b "count" 8 in
  Builder.sync b "tick"
    [
      Builder.Dsl.if_
        (Builder.Dsl.v reset)
        [ Builder.Dsl.( <-- ) count (Builder.Dsl.c ~width:8 0) ]
        [
          Builder.Dsl.( <-- ) count
            Builder.Dsl.(v count +: c ~width:8 1);
        ];
    ];
  let design = Builder.finish b in
  let r =
    Synth.Flow.run ~check_invariants:true ~layout:true Synth.Flow.Vhdl design
  in
  let opt =
    List.find (fun p -> p.Synth.Flow.pass_name = "opt") r.Synth.Flow.passes
  in
  (match opt.Synth.Flow.invariant with
  | Some Backend.Cec.Proved -> ()
  | Some v ->
      Alcotest.failf "opt invariant not proved: %a" Backend.Cec.pp_verdict v
  | None -> Alcotest.fail "invariant missing despite check_invariants");
  match r.Synth.Flow.layout with
  | Some l ->
      Alcotest.(check bool) "ffs placed" true (l.Synth.Flow.ffs >= 8);
      Alcotest.(check bool) "post-layout fmax positive" true
        (l.Synth.Flow.post_fmax_mhz > 0.0);
      Alcotest.(check bool) "layout in summary" true
        (contains "layout" (Synth.Flow.summary r))
  | None -> Alcotest.fail "layout report missing despite ~layout:true"

let test_whole_catalogue_synthesizes () =
  (* every registered design lowers to a checked netlist with sane
     area and timing, through both flows *)
  List.iter
    (fun (name, (_, make)) ->
      let design = make () in
      let nl = Backend.Opt.optimize (Backend.Lower.lower design) in
      Backend.Netlist.check nl;
      let area = Backend.Area.analyze nl in
      let timing = Backend.Timing.analyze nl in
      Alcotest.(check bool) (name ^ " area positive") true
        (area.Backend.Area.total > 0.0);
      Alcotest.(check bool)
        (name ^ " timing sane")
        true
        (timing.Backend.Timing.fmax_mhz > 1.0))
    Expocu.Registry.registry

let test_catalogue_distinct_names () =
  let names = List.map fst Expocu.Registry.registry in
  Alcotest.(check int) "no duplicates"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "lookup works" true
    (Expocu.Registry.find "expocu_osss" <> None);
  Alcotest.(check bool) "unknown rejected" true
    (Expocu.Registry.find "nope" = None)

let test_metrics_text () =
  let m =
    Metrics.of_text
      "// a comment\nif (x) { y = 1; }\n/* block\ncomment */\ncase (z)\n"
  in
  Alcotest.(check int) "lines without comments" 2 m.Metrics.lines;
  Alcotest.(check int) "decisions" 2 m.Metrics.decisions

let test_metrics_module () =
  let osss = Metrics.of_module (Expocu.I2c.osss_module ()) in
  let vhdl = Metrics.of_module (Expocu.I2c.vhdl_module ()) in
  Alcotest.(check bool) "vhdl style is more verbose" true
    (vhdl.Metrics.lines > osss.Metrics.lines);
  Alcotest.(check bool) "effort positive" true (Metrics.effort_days osss > 0.0)

let suite =
  [
    Alcotest.test_case "asap schedule" `Quick test_asap_schedule;
    Alcotest.test_case "list schedule" `Quick test_list_schedule_constrained;
    Alcotest.test_case "behavioral asap module" `Quick
      test_behavioral_module_asap;
    Alcotest.test_case "behavioral constrained module" `Quick
      test_behavioral_module_constrained;
    Alcotest.test_case "resource sharing area" `Quick
      test_behavioral_resource_sharing_area;
    Alcotest.test_case "behavioral netlist equiv" `Quick
      test_behavioral_netlist_equiv;
    prop_random_dfg;
    Alcotest.test_case "analyzer report" `Quick test_analyzer_report;
    Alcotest.test_case "flows run" `Quick test_flow_runs;
    Alcotest.test_case "flow pass trace" `Quick test_flow_pass_trace;
    Alcotest.test_case "flow invariants and layout" `Quick
      test_flow_invariants_and_layout;
    Alcotest.test_case "whole catalogue synthesizes" `Quick
      test_whole_catalogue_synthesizes;
    Alcotest.test_case "catalogue names" `Quick test_catalogue_distinct_names;
    Alcotest.test_case "metrics text" `Quick test_metrics_text;
    Alcotest.test_case "metrics module" `Quick test_metrics_module;
  ]

let () = Alcotest.run "synth" [ ("synth", suite) ]
