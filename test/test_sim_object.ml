(* Tests for simulation-time objects: immediate method execution, and
   bit-exactness against the synthesis path (the OSSS refinement
   guarantee — the simulated object and the synthesized object never
   diverge). *)

open Hdl
module CD = Osss.Class_def
module SO = Osss.Sim_object
module OI = Osss.Object_inst

let sync_cls = Expocu.Sync.sync_register ~regsize:4 ~resetvalue:0

let test_create_and_reset () =
  let o = SO.create sync_cls in
  Alcotest.(check int) "reset state" 0 (Bitvec.to_int (SO.state o));
  SO.call o "Write" [ Bitvec.of_bool true ];
  Alcotest.(check bool) "changed" false (Bitvec.is_zero (SO.state o));
  SO.reset o;
  Alcotest.(check int) "reset again" 0 (Bitvec.to_int (SO.state o))

let test_method_semantics () =
  let o = SO.create sync_cls in
  (* shift in 1,1,0 -> RegValue = 0110 *)
  SO.call o "Write" [ Bitvec.of_bool true ];
  SO.call o "Write" [ Bitvec.of_bool true ];
  SO.call o "Write" [ Bitvec.of_bool false ];
  Alcotest.(check int) "shift register contents" 0b0110
    (Bitvec.to_int (SO.call_fn o "Value" []));
  Alcotest.(check int) "rising at index 2" 1
    (Bitvec.to_int (SO.call_fn o "RisingEdge" [ Bitvec.of_int ~width:8 2 ]));
  Alcotest.(check int) "falling at index 0" 1
    (Bitvec.to_int (SO.call_fn o "FallingEdge" [ Bitvec.of_int ~width:8 0 ]))

let test_show_and_equal () =
  let a = SO.create sync_cls and b = SO.create sync_cls in
  Alcotest.(check bool) "fresh objects equal" true (SO.equal a b);
  SO.call a "Write" [ Bitvec.of_bool true ];
  Alcotest.(check bool) "diverged" false (SO.equal a b);
  SO.set_state b (SO.state a);
  Alcotest.(check bool) "signal-style transfer" true (SO.equal a b);
  Alcotest.(check string) "show" "SyncRegister<4,0>{RegValue=4'h1}" (SO.show a)

let test_call_errors () =
  let o = SO.create sync_cls in
  Alcotest.(check bool) "unknown method" true
    (try SO.call o "Nope" []; false with SO.Sim_call_error _ -> true);
  Alcotest.(check bool) "width check" true
    (try
       SO.call o "Write" [ Bitvec.of_int ~width:2 1 ];
       false
     with SO.Sim_call_error _ -> true);
  Alcotest.(check bool) "fn via call" true
    (try SO.call o "Value" []; false with SO.Sim_call_error _ -> true)

(* Refinement: drive random Write sequences into a simulation object
   and into a synthesized module holding the same class; the state
   vectors must agree after every step. *)
let test_refinement_bit_exact () =
  let b = Builder.create "refine" in
  let data = Builder.input b "data" 1 in
  let out = Builder.output b "out" 4 in
  let obj = OI.instantiate b ~name:"reg" sync_cls in
  let _, value_e = OI.call_fn obj "Value" [] in
  Builder.sync b "drive"
    (OI.call obj "Write" [ Ir.Var data ] @ [ Ir.Assign (out, value_e) ]);
  let sim = Rtl_sim.create (Builder.finish b) in
  let o = SO.create sync_cls in
  let rng = Random.State.make [| 7 |] in
  for i = 0 to 199 do
    let bit = Random.State.bool rng in
    Rtl_sim.set_input sim "data" (Bitvec.of_bool bit);
    Rtl_sim.step sim;
    SO.call o "Write" [ Bitvec.of_bool bit ];
    if not (Bitvec.equal (SO.state o) (Rtl_sim.get sim "out")) then
      Alcotest.failf "diverged at step %d: sim-object %s vs hardware %s" i
        (Bitvec.to_string (SO.state o))
        (Bitvec.to_string (Rtl_sim.get sim "out"))
  done

(* The same check as a qcheck property over arbitrary bit sequences and
   register sizes. *)
let prop_refinement =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"sim object refines hardware"
       QCheck2.Gen.(pair (int_range 2 12) (list_size (int_range 1 40) bool))
       (fun (regsize, bits) ->
         let cls = Expocu.Sync.sync_register ~regsize ~resetvalue:0 in
         let b = Builder.create "refine_prop" in
         let data = Builder.input b "data" 1 in
         let out = Builder.output b "out" regsize in
         let obj = OI.instantiate b ~name:"reg" cls in
         let _, value_e = OI.call_fn obj "Value" [] in
         Builder.sync b "drive"
           (OI.call obj "Write" [ Ir.Var data ] @ [ Ir.Assign (out, value_e) ]);
         let sim = Rtl_sim.create (Builder.finish b) in
         let o = SO.create cls in
         List.for_all
           (fun bit ->
             Rtl_sim.set_input sim "data" (Bitvec.of_bool bit);
             Rtl_sim.step sim;
             SO.call o "Write" [ Bitvec.of_bool bit ];
             Bitvec.equal (SO.state o) (Rtl_sim.get sim "out"))
           bits))

(* Histogram class as a simulation object vs the golden model. *)
let test_histogram_sim_object () =
  let cls = Expocu.Histogram.histogram_class ~bins:16 ~count_w:16 in
  let o = SO.create cls in
  let pixels = Array.init 300 (fun i -> i * 29 mod 256) in
  Array.iter
    (fun px -> SO.call o "AddSample" [ Bitvec.of_int ~width:8 px ])
    pixels;
  let golden = Expocu.Exposure_algo.histogram ~bins:16 pixels in
  Array.iteri
    (fun i expected ->
      Alcotest.(check int)
        (Printf.sprintf "bin %d" i)
        expected
        (Bitvec.to_int (SO.call_fn o "GetBin" [ Bitvec.of_int ~width:8 i ])))
    golden;
  Alcotest.(check int) "total" 300 (Bitvec.to_int (SO.call_fn o "Total" []))

(* sc_signal<Object> transfer between two clocked threads (§6). *)
let test_object_signal_transfer () =
  let k = Sim.Kernel.create () in
  let clock = Sim.Clock.create k ~period_ps:10 () in
  let chan = Osss.Object_signal.create k ~name:"chan" sync_cls in
  let received = ref [] in
  let _producer =
    Sim.Process.cthread k ~name:"producer" ~clock (fun ctx ->
        let obj = SO.create sync_cls in
        let rec loop () =
          SO.call obj "Write" [ Bitvec.of_bool true ];
          Osss.Object_signal.write chan obj;
          Sim.Process.wait ctx;
          loop ()
        in
        loop ())
  in
  let _consumer =
    Sim.Process.cthread k ~name:"consumer" ~clock (fun ctx ->
        let rec loop () =
          Sim.Process.wait ctx;
          let obj = Osss.Object_signal.read chan in
          received := Bitvec.to_int (SO.call_fn obj "Value" []) :: !received;
          loop ()
        in
        loop ())
  in
  Sim.Kernel.run_until k 62;
  (* the consumer sees the producer's object one update phase behind:
     successive shift-register states 0b11, 0b111, 0b1111, ... (newest
     first in the trace) *)
  Alcotest.(check (list int)) "received object states" [ 15; 15; 15; 7; 3 ]
    (List.filteri (fun i _ -> i < 5) !received)

let test_object_signal_class_check () =
  let k = Sim.Kernel.create () in
  let chan = Osss.Object_signal.create k ~name:"chan" sync_cls in
  let wrong = SO.create (Expocu.Histogram.histogram_class ~bins:4 ~count_w:4) in
  Alcotest.(check bool) "wrong class rejected" true
    (try Osss.Object_signal.write chan wrong; false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "create and reset" `Quick test_create_and_reset;
    Alcotest.test_case "method semantics" `Quick test_method_semantics;
    Alcotest.test_case "show and equal" `Quick test_show_and_equal;
    Alcotest.test_case "call errors" `Quick test_call_errors;
    Alcotest.test_case "refinement bit exact" `Quick test_refinement_bit_exact;
    prop_refinement;
    Alcotest.test_case "histogram sim object" `Quick test_histogram_sim_object;
    Alcotest.test_case "object signal transfer" `Quick
      test_object_signal_transfer;
    Alcotest.test_case "object signal class check" `Quick
      test_object_signal_class_check;
  ]

let () = Alcotest.run "sim_object" [ ("sim_object", suite) ]
