(* Tests for the HDL IR: typing, evaluation, builder, elaboration, the
   RTL interpreter, and the VHDL/Verilog emitters. *)

open Hdl
open Builder.Dsl

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* A small synchronous accumulator used by several tests. *)
let make_accumulator () =
  let b = Builder.create "accumulator" in
  let reset = Builder.input b "reset" 1 in
  let enable = Builder.input b "enable" 1 in
  let data = Builder.input b "data" 8 in
  let total = Builder.output b "total" 8 in
  Builder.sync b "accumulate"
    [
      if_ (v reset)
        [ total <-- c ~width:8 0 ]
        [ when_ (v enable) [ total <-- (v total +: v data) ] ];
    ];
  Builder.finish b

let test_width_inference () =
  let x = Ir.fresh_var ~name:"x" ~width:8 () in
  Alcotest.(check int) "add width" 8 (Ir.width_of (v x +: v x));
  Alcotest.(check int) "cmp width" 1 (Ir.width_of (v x ==: v x));
  Alcotest.(check int) "concat width" 16 (Ir.width_of (concat [ v x; v x ]));
  Alcotest.(check int) "slice width" 4 (Ir.width_of (slice (v x) ~hi:7 ~lo:4));
  Alcotest.(check int) "zext width" 12 (Ir.width_of (zext (v x) 12));
  Alcotest.check_raises "mismatch"
    (Ir.Type_error "binop operand widths 8 vs 4") (fun () ->
      ignore (Ir.width_of (v x +: c ~width:4 0)))

let test_single_driver_check () =
  let b = Builder.create "bad" in
  let _i = Builder.input b "i" 1 in
  let w = Builder.wire b "w" 4 in
  Builder.comb b "p1" [ w <-- c ~width:4 1 ];
  Builder.sync b "p2" [ w <-- c ~width:4 2 ];
  Alcotest.check_raises "double driver"
    (Ir.Type_error "w driven by both comb and sync logic") (fun () ->
      ignore (Builder.finish b))

let test_eval_expr () =
  let env = Eval.create () in
  let x = Ir.fresh_var ~name:"x" ~width:8 () in
  Eval.set env x (Bitvec.of_int ~width:8 200);
  let e = v x +: c ~width:8 100 in
  Alcotest.(check int) "wrapping add" 44 (Bitvec.to_int (Eval.eval_expr env e));
  let m = mux2 (v x >: c ~width:8 100) (c ~width:8 1) (c ~width:8 2) in
  Alcotest.(check int) "mux true" 1 (Bitvec.to_int (Eval.eval_expr env m));
  let shifted = v x <<: c ~width:4 2 in
  Alcotest.(check int) "shl" (200 * 4 land 0xff)
    (Bitvec.to_int (Eval.eval_expr env shifted))

let test_eval_sequential_visibility () =
  let env = Eval.create () in
  let x = Ir.fresh_var ~name:"x" ~width:8 () in
  let y = Ir.fresh_var ~name:"y" ~width:8 () in
  Eval.run_body env [ x <-- c ~width:8 5; y <-- (v x +: v x) ];
  Alcotest.(check int) "sees earlier assign" 10 (Bitvec.to_int (Eval.get env y))

let test_rtl_sim_accumulator () =
  let sim = Rtl_sim.create (make_accumulator ()) in
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.set_input_int sim "enable" 0;
  Rtl_sim.set_input_int sim "data" 0;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "reset" 0;
  Rtl_sim.set_input_int sim "enable" 1;
  Rtl_sim.set_input_int sim "data" 7;
  Rtl_sim.run sim 3;
  Alcotest.(check int) "3 x 7" 21 (Rtl_sim.get_int sim "total");
  Rtl_sim.set_input_int sim "enable" 0;
  Rtl_sim.run sim 5;
  Alcotest.(check int) "hold" 21 (Rtl_sim.get_int sim "total")

let test_rtl_sim_comb_chain () =
  (* Two chained combinational processes must settle in one call even in
     unfavourable declaration order. *)
  let b = Builder.create "chain" in
  let a = Builder.input b "a" 4 in
  let out = Builder.output b "out" 4 in
  let mid = Builder.wire b "mid" 4 in
  Builder.comb b "second" [ out <-- (v mid +: c ~width:4 1) ];
  Builder.comb b "first" [ mid <-- (v a +: c ~width:4 1) ];
  let sim = Rtl_sim.create (Builder.finish b) in
  Rtl_sim.set_input_int sim "a" 3;
  Rtl_sim.settle sim;
  Alcotest.(check int) "a+2" 5 (Rtl_sim.get_int sim "out")

let test_rtl_sim_memory () =
  let b = Builder.create "mem_test" in
  let we = Builder.input b "we" 1 in
  let waddr = Builder.input b "waddr" 3 in
  let wdata = Builder.input b "wdata" 8 in
  let raddr = Builder.input b "raddr" 3 in
  let rdata = Builder.output b "rdata" 8 in
  let mem = Builder.memory b "mem" ~width:8 ~depth:8 in
  Builder.sync b "write" [ when_ (v we) [ awrite mem (v waddr) (v wdata) ] ];
  Builder.comb b "read" [ rdata <-- aread mem (v raddr) ];
  let sim = Rtl_sim.create (Builder.finish b) in
  Rtl_sim.set_input_int sim "we" 1;
  Rtl_sim.set_input_int sim "waddr" 5;
  Rtl_sim.set_input_int sim "wdata" 0xAB;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "we" 0;
  Rtl_sim.set_input_int sim "raddr" 5;
  Rtl_sim.settle sim;
  Alcotest.(check int) "read back" 0xAB (Rtl_sim.get_int sim "rdata");
  Rtl_sim.set_input_int sim "raddr" 2;
  Rtl_sim.settle sim;
  Alcotest.(check int) "other slot zero" 0 (Rtl_sim.get_int sim "rdata")

let test_case_statement () =
  let b = Builder.create "decoder" in
  let sel = Builder.input b "sel" 2 in
  let out = Builder.output b "out" 4 in
  Builder.comb b "decode"
    [
      case (v sel)
        [ (0, [ out <-- c ~width:4 1 ]); (1, [ out <-- c ~width:4 2 ]);
          (2, [ out <-- c ~width:4 4 ]) ]
        [ out <-- c ~width:4 8 ];
    ];
  let sim = Rtl_sim.create (Builder.finish b) in
  let expect sel value =
    Rtl_sim.set_input_int sim "sel" sel;
    Rtl_sim.settle sim;
    Alcotest.(check int) (Printf.sprintf "sel=%d" sel) value
      (Rtl_sim.get_int sim "out")
  in
  expect 0 1;
  expect 1 2;
  expect 2 4;
  expect 3 8

let make_hierarchical () =
  (* adder leaf instantiated twice: out = (a+b) + (a+b) *)
  let leaf =
    let b = Builder.create "adder_leaf" in
    let x = Builder.input b "x" 8 in
    let y = Builder.input b "y" 8 in
    let s = Builder.output b "s" 8 in
    Builder.comb b "add" [ s <-- (v x +: v y) ];
    Builder.finish b
  in
  let b = Builder.create "top" in
  let a = Builder.input b "a" 8 in
  let c_in = Builder.input b "b" 8 in
  let out = Builder.output b "out" 8 in
  let mid = Builder.wire b "mid" 8 in
  Builder.instantiate b ~name:"u1" leaf [ ("x", a); ("y", c_in); ("s", mid) ];
  Builder.instantiate b ~name:"u2" leaf [ ("x", mid); ("y", mid); ("s", out) ];
  Builder.finish b

let test_elaboration () =
  let top = make_hierarchical () in
  let flat = Elaborate.flatten top in
  Alcotest.(check int) "no instances left" 0 (List.length flat.Ir.instances);
  Alcotest.(check int) "two inlined processes" 2
    (List.length flat.Ir.processes);
  let sim = Rtl_sim.create top in
  Rtl_sim.set_input_int sim "a" 3;
  Rtl_sim.set_input_int sim "b" 4;
  Rtl_sim.settle sim;
  Alcotest.(check int) "2*(a+b)" 14 (Rtl_sim.get_int sim "out")

let test_hierarchy_report () =
  let rows = Elaborate.hierarchy (make_hierarchical ()) in
  Alcotest.(check int) "three rows" 3 (List.length rows);
  match rows with
  | (path, name, depth) :: _ ->
      Alcotest.(check string) "root path" "/top" path;
      Alcotest.(check string) "root name" "top" name;
      Alcotest.(check int) "root depth" 0 depth
  | [] -> Alcotest.fail "empty hierarchy"

let test_module_stats () =
  let stats = Ir.module_stats (make_accumulator ()) in
  Alcotest.(check int) "one process" 1 stats.Ir.n_processes;
  Alcotest.(check int) "state bits" 8 stats.Ir.n_state_bits

let test_verilog_emission () =
  let text = Verilog.emit (make_accumulator ()) in
  Alcotest.(check bool) "module decl" true (contains "module accumulator" text);
  Alcotest.(check bool) "posedge block" true
    (contains "always @(posedge clk)" text);
  Alcotest.(check bool) "ranged output" true (contains "[7:0]" text);
  let hier = Verilog.emit (make_hierarchical ()) in
  Alcotest.(check bool) "leaf emitted once" true
    (contains "module adder_leaf" hier);
  Alcotest.(check bool) "instantiation" true (contains "adder_leaf u1" hier)

let test_vhdl_emission () =
  let text = Vhdl.emit (make_accumulator ()) in
  Alcotest.(check bool) "entity" true (contains "entity accumulator is" text);
  Alcotest.(check bool) "rising edge" true (contains "rising_edge(clk)" text);
  Alcotest.(check bool) "numeric_std" true (contains "use ieee.numeric_std.all" text);
  let hier = Vhdl.emit (make_hierarchical ()) in
  Alcotest.(check bool) "component instantiation" true
    (contains "entity work.adder_leaf" hier)

let test_comb_loop_detection () =
  let b = Builder.create "looped" in
  let _i = Builder.input b "i" 1 in
  let x = Builder.wire b "x" 4 in
  let y = Builder.wire b "y" 4 in
  Builder.comb b "p1" [ x <-- (v y +: c ~width:4 1) ];
  Builder.comb b "p2" [ y <-- (v x +: c ~width:4 1) ];
  let m = Builder.finish b in
  let sim = Rtl_sim.create m in
  (* The static scheduler names both the module and a process on the
     cycle in the diagnostic. *)
  Alcotest.check_raises "loop raises"
    (Rtl_sim.Combinational_loop "looped: combinational cycle through process p1")
    (fun () -> Rtl_sim.settle sim)

let test_comb_self_dependence () =
  (* A process that reads its own write target before assigning it is
     not a combinational loop: sequential body semantics resolve it.
     The scheduler must not reject it, and the default-then-override
     idiom must still evaluate correctly. *)
  let b = Builder.create "self_dep" in
  let a = Builder.input b "a" 4 in
  let out = Builder.output b "out" 4 in
  Builder.comb b "dflt"
    [ out <-- c ~width:4 9; when_ (v a >: c ~width:4 7) [ out <-- v a ] ];
  let sim = Rtl_sim.create (Builder.finish b) in
  Rtl_sim.set_input_int sim "a" 3;
  Rtl_sim.settle sim;
  Alcotest.(check int) "default arm" 9 (Rtl_sim.get_int sim "out");
  Rtl_sim.set_input_int sim "a" 12;
  Rtl_sim.settle sim;
  Alcotest.(check int) "override arm" 12 (Rtl_sim.get_int sim "out")

let test_comb_activity_scheduling () =
  (* Activity-based settling: an acyclic design runs each combinational
     process at most once per settle, and processes whose inputs did not
     change are skipped entirely.  Checked through both the per-instance
     accessors and the global Metrics.Perf counters. *)
  let runs_ctr = Metrics.Perf.counter "rtl_sim.process_runs" in
  let b = Builder.create "activity" in
  let reset = Builder.input b "reset" 1 in
  let enable = Builder.input b "enable" 1 in
  let data = Builder.input b "data" 8 in
  let total = Builder.output b "total" 8 in
  let twice = Builder.output b "twice" 8 in
  let flag = Builder.output b "flag" 1 in
  Builder.sync b "accumulate"
    [
      if_ (v reset)
        [ total <-- c ~width:8 0 ]
        [ when_ (v enable) [ total <-- (v total +: v data) ] ];
    ];
  Builder.comb b "double" [ twice <-- (v total +: v total) ];
  Builder.comb b "compare" [ flag <-- (v twice >: c ~width:8 100) ];
  let sim = Rtl_sim.create (Builder.finish b) in
  let n_combs = 2 in
  Rtl_sim.set_input_int sim "reset" 0;
  Rtl_sim.set_input_int sim "enable" 1;
  Rtl_sim.set_input_int sim "data" 7;
  let perf_before = Metrics.Perf.value runs_ctr in
  Rtl_sim.run sim 10;
  Alcotest.(check int) "total" 70 (Rtl_sim.get_int sim "total");
  Alcotest.(check int) "twice" 140 (Rtl_sim.get_int sim "twice");
  Alcotest.(check int) "flag" 1 (Rtl_sim.get_int sim "flag");
  (* Every settle accounts for every comb process exactly once, as a run
     or a skip — i.e. nothing ran twice in one settle. *)
  Alcotest.(check int) "at most once per settle"
    (n_combs * Rtl_sim.settles sim)
    (Rtl_sim.comb_runs sim + Rtl_sim.comb_skips sim);
  Alcotest.(check int) "global counter tracks instance"
    (Rtl_sim.comb_runs sim)
    (Metrics.Perf.value runs_ctr - perf_before);
  (* Freeze the accumulator: after the first quiescent settle nothing is
     dirty any more, so further settles skip both processes. *)
  Rtl_sim.set_input_int sim "enable" 0;
  Rtl_sim.run sim 1;
  let runs0 = Rtl_sim.comb_runs sim and skips0 = Rtl_sim.comb_skips sim in
  Rtl_sim.run sim 5;
  Alcotest.(check int) "quiescent cycles run nothing" runs0
    (Rtl_sim.comb_runs sim);
  Alcotest.(check int) "quiescent cycles skip everything"
    (skips0 + (5 * 2 * n_combs))
    (Rtl_sim.comb_skips sim);
  Alcotest.(check int) "outputs hold" 140 (Rtl_sim.get_int sim "twice")

let suite =
  [
    Alcotest.test_case "width inference" `Quick test_width_inference;
    Alcotest.test_case "single driver check" `Quick test_single_driver_check;
    Alcotest.test_case "expression evaluation" `Quick test_eval_expr;
    Alcotest.test_case "sequential visibility" `Quick
      test_eval_sequential_visibility;
    Alcotest.test_case "rtl sim accumulator" `Quick test_rtl_sim_accumulator;
    Alcotest.test_case "comb chain settles" `Quick test_rtl_sim_comb_chain;
    Alcotest.test_case "memory ops" `Quick test_rtl_sim_memory;
    Alcotest.test_case "case statement" `Quick test_case_statement;
    Alcotest.test_case "elaboration" `Quick test_elaboration;
    Alcotest.test_case "hierarchy report" `Quick test_hierarchy_report;
    Alcotest.test_case "module stats" `Quick test_module_stats;
    Alcotest.test_case "verilog emission" `Quick test_verilog_emission;
    Alcotest.test_case "vhdl emission" `Quick test_vhdl_emission;
    Alcotest.test_case "comb loop detection" `Quick test_comb_loop_detection;
    Alcotest.test_case "comb self dependence" `Quick test_comb_self_dependence;
    Alcotest.test_case "comb activity scheduling" `Quick
      test_comb_activity_scheduling;
  ]

let () = Alcotest.run "hdl" [ ("hdl", suite) ]
