(* Dynamic power estimation: the Power_dyn model over sampled
   switching activity, scalar/word-parallel sampler agreement, and the
   power pass joined into the synthesis flow result. *)

open Hdl
open Builder.Dsl

(* A leaf and a two-instance top, so per-module attribution has real
   regions to land in. *)
let counter_leaf () =
  let b = Builder.create "cnt_leaf" in
  let en = Builder.input b "en" 1 in
  let q = Builder.output b "q" 4 in
  Builder.sync b "count" [ when_ (v en) [ q <-- (v q +: c ~width:4 1) ] ];
  Builder.finish b

let hier_design () =
  let leaf = counter_leaf () in
  let b = Builder.create "cnt_pair" in
  let en = Builder.input b "en" 1 in
  let q0 = Builder.output b "q0" 4 in
  let q1 = Builder.output b "q1" 4 in
  let sum = Builder.output b "sum" 4 in
  let w0 = Builder.wire b "w0" 4 in
  let w1 = Builder.wire b "w1" 4 in
  Builder.instantiate b ~name:"u_c0" leaf [ ("en", en); ("q", w0) ];
  Builder.instantiate b ~name:"u_c1" leaf [ ("en", en); ("q", w1) ];
  Builder.comb b "mix"
    [ q0 <-- v w0; q1 <-- v w1; sum <-- (v w0 +: v w1) ];
  Builder.finish b

let lowered () = Backend.Opt.optimize (Backend.Lower.lower (hier_design ()))

(* ------------------------------------------------------------------ *)
(* Model sanity                                                        *)

let test_measure_sanity () =
  let nl = lowered () in
  let r = Synth.Power_dyn.measure ~cycles:64 ~window:16 nl in
  Alcotest.(check int) "all cycles sampled" 64 r.Synth.Power_dyn.p_cycles;
  Alcotest.(check bool) "energy flowed" true
    (r.Synth.Power_dyn.p_total_energy_pj > 0.0);
  Alcotest.(check bool) "leakage present" true
    (r.Synth.Power_dyn.p_leakage_mw > 0.0);
  Alcotest.(check bool) "peak bounds average" true
    (r.Synth.Power_dyn.p_peak_mw >= r.Synth.Power_dyn.p_avg_mw);
  Alcotest.(check int) "windows tile the run" 4
    (List.length r.Synth.Power_dyn.p_samples);
  (* Energy is additive: windows must sum to the total. *)
  let from_samples =
    List.fold_left
      (fun acc s -> acc +. s.Synth.Power_dyn.s_energy_pj)
      0.0 r.Synth.Power_dyn.p_samples
  in
  Alcotest.(check bool) "window energies sum to total" true
    (Float.abs (from_samples -. r.Synth.Power_dyn.p_total_energy_pj) < 1e-9)

let test_measure_by_module () =
  let nl = lowered () in
  let r = Synth.Power_dyn.measure ~cycles:64 nl in
  let paths =
    List.map (fun m -> m.Synth.Power_dyn.pm_path) r.Synth.Power_dyn.p_by_module
  in
  List.iter
    (fun inst ->
      if not (List.mem inst paths) then
        Alcotest.failf "instance %s missing from power attribution" inst)
    [ "u_c0"; "u_c1" ];
  (* Attributed paths come from the netlist's region tags, nowhere else. *)
  let regions = "" :: Backend.Netlist.region_names nl in
  List.iter
    (fun p ->
      if not (List.mem p regions) then
        Alcotest.failf "power attributed to unknown region %S" p)
    paths;
  (* Two instances of the same counter under the same enable stream
     must burn the same energy. *)
  let energy inst =
    let m =
      List.find
        (fun m -> m.Synth.Power_dyn.pm_path = inst)
        r.Synth.Power_dyn.p_by_module
    in
    m.Synth.Power_dyn.pm_energy_pj
  in
  Alcotest.(check bool) "identical twins, identical energy" true
    (Float.abs (energy "u_c0" -. energy "u_c1") < 1e-9)

let test_measure_deterministic () =
  let nl = lowered () in
  let a = Synth.Power_dyn.measure ~seed:7 ~cycles:48 nl in
  let b = Synth.Power_dyn.measure ~seed:7 ~cycles:48 nl in
  Alcotest.(check (float 0.0)) "same seed, same energy"
    a.Synth.Power_dyn.p_total_energy_pj b.Synth.Power_dyn.p_total_energy_pj;
  Alcotest.(check (float 0.0)) "same seed, same peak"
    a.Synth.Power_dyn.p_peak_mw b.Synth.Power_dyn.p_peak_mw

let test_peak_why_shape () =
  let nl = lowered () in
  let r = Synth.Power_dyn.measure ~cycles:64 ~window:16 nl in
  match r.Synth.Power_dyn.p_peak_why with
  | None -> Alcotest.fail "active design has no peak_why"
  | Some spec -> (
      (* Must be the "net@cycle" shape osss_debug --why consumes. *)
      match String.rindex_opt spec '@' with
      | None -> Alcotest.failf "peak_why %S has no @cycle suffix" spec
      | Some i ->
          let cycle =
            String.sub spec (i + 1) (String.length spec - i - 1)
          in
          (match int_of_string_opt cycle with
          | Some c ->
              Alcotest.(check bool) "cycle within the run" true
                (c >= 0 && c <= 64)
          | None -> Alcotest.failf "peak_why cycle %S not an int" cycle);
          Alcotest.(check bool) "net name non-empty" true (i > 0))

(* ------------------------------------------------------------------ *)
(* Scalar vs word-parallel sampler agreement (acceptance criterion:
   lane 0 of the word simulator matches the scalar simulator
   bit-for-bit under identical stimulus).                              *)

let window_shape act =
  List.map
    (fun (w : Cover.Activity.window) ->
      (w.w_index, w.w_start, w.w_cycles, w.w_counts))
    (Cover.Activity.windows act)

let test_lane0_matches_scalar () =
  let nl = lowered () in
  let ssim = Backend.Nl_sim.create nl in
  let wsim = Backend.Nl_wsim.create ~lanes:5 nl in
  Backend.Nl_sim.enable_power_sampler ~window:4 ssim;
  Backend.Nl_wsim.enable_power_sampler ~window:4 wsim;
  for c = 0 to 17 do
    (* Same stimulus on the scalar sim and on every word lane (a
       broadcast write drives lane 0 too). *)
    let en = if c mod 3 = 0 then 0 else 1 in
    Backend.Nl_sim.set_input_int ssim "en" en;
    Backend.Nl_wsim.set_input wsim "en" (Bitvec.of_int ~width:1 en);
    Backend.Nl_sim.step ssim;
    Backend.Nl_wsim.step wsim
  done;
  let sact =
    match Backend.Nl_sim.power_activity ssim with
    | Some a -> a
    | None -> Alcotest.fail "scalar sampler missing"
  in
  let wact =
    match Backend.Nl_wsim.lane_activity wsim 0 with
    | Some a -> a
    | None -> Alcotest.fail "word lane-0 sampler missing"
  in
  Cover.Activity.flush sact;
  Cover.Activity.flush wact;
  Alcotest.(check int) "same cycle count" (Cover.Activity.cycles sact)
    (Cover.Activity.cycles wact);
  Alcotest.(check int) "same toggle total"
    (Cover.Activity.total_toggles sact)
    (Cover.Activity.total_toggles wact);
  Alcotest.(check bool) "lane 0 windows match scalar bit-for-bit" true
    (window_shape sact = window_shape wact);
  Alcotest.(check bool) "activity was non-trivial" true
    (Cover.Activity.total_toggles sact > 0)

(* ------------------------------------------------------------------ *)
(* Power pass joined into the synthesis flow                           *)

let test_flow_power_pass () =
  let design = hier_design () in
  let plain = Synth.Flow.run Synth.Flow.Osss design in
  Alcotest.(check bool) "no power unless requested" true
    (plain.Synth.Flow.power = None);
  List.iter
    (fun bm ->
      if bm.Synth.Flow.bm_power_mw <> None then
        Alcotest.failf "module %s has power without a power pass"
          bm.Synth.Flow.bm_path)
    plain.Synth.Flow.by_module;
  let result = Synth.Flow.run ~power_cycles:64 Synth.Flow.Osss design in
  let pow =
    match result.Synth.Flow.power with
    | Some p -> p
    | None -> Alcotest.fail "power pass produced no report"
  in
  Alcotest.(check int) "requested cycles simulated" 64
    pow.Synth.Power_dyn.p_cycles;
  (* Instance rows of the area/timing breakdown carry the joined
     average power. *)
  List.iter
    (fun inst ->
      match
        List.find_opt
          (fun bm -> bm.Synth.Flow.bm_path = inst)
          result.Synth.Flow.by_module
      with
      | None -> Alcotest.failf "no breakdown row for %s" inst
      | Some bm ->
          if bm.Synth.Flow.bm_power_mw = None then
            Alcotest.failf "breakdown row %s missing joined power" inst)
    [ "u_c0"; "u_c1" ];
  (* The JSON surface exposes both the power section and the per-row
     dynamic_mw join. *)
  let json = Synth.Flow.result_json result in
  Alcotest.(check bool) "result json has a power section" true
    (Obs.Json.member "power" json <> None);
  let rows =
    match Obs.Json.member "by_module" json with
    | Some (Obs.Json.List rows) -> rows
    | _ -> Alcotest.fail "result json has no by_module list"
  in
  Alcotest.(check bool) "rows carry dynamic_mw" true
    (List.exists (fun row -> Obs.Json.member "dynamic_mw" row <> None) rows)

let test_analyze_flushes_partial_window () =
  let nl = lowered () in
  let sim = Backend.Nl_sim.create nl in
  Backend.Nl_sim.enable_power_sampler ~window:64 sim;
  Backend.Nl_sim.set_input_int sim "en" 1;
  for _ = 1 to 10 do
    Backend.Nl_sim.step sim
  done;
  let act =
    match Backend.Nl_sim.power_activity sim with
    | Some a -> a
    | None -> Alcotest.fail "sampler missing"
  in
  let r = Synth.Power_dyn.analyze nl act in
  Alcotest.(check int) "partial window counted" 10 r.Synth.Power_dyn.p_cycles;
  Alcotest.(check int) "one flushed sample" 1
    (List.length r.Synth.Power_dyn.p_samples);
  Alcotest.(check bool) "partial window carries energy" true
    (r.Synth.Power_dyn.p_total_energy_pj > 0.0)

let suite =
  [
    Alcotest.test_case "measure sanity" `Quick test_measure_sanity;
    Alcotest.test_case "per-module attribution" `Quick test_measure_by_module;
    Alcotest.test_case "deterministic stimulus" `Quick
      test_measure_deterministic;
    Alcotest.test_case "peak_why shape" `Quick test_peak_why_shape;
    Alcotest.test_case "lane 0 matches scalar" `Quick
      test_lane0_matches_scalar;
    Alcotest.test_case "flow power pass" `Quick test_flow_power_pass;
    Alcotest.test_case "analyze flushes partial window" `Quick
      test_analyze_flushes_partial_window;
  ]

let () = Alcotest.run "power" [ ("power", suite) ]
