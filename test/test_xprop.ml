(* Tests for four-state reset-coverage analysis: flip-flops power up
   unknown and the checker reports what a reset sequence fails to
   initialize. *)

open Hdl
open Builder.Dsl
module X = Backend.Xprop

(* Counter with a synchronous reset: fully initialized by reset. *)
let counter_with_reset () =
  let b = Builder.create "cnt_rst" in
  let reset = Builder.input b "reset" 1 in
  let count = Builder.output b "count" 8 in
  Builder.sync b "tick"
    [
      if_ (v reset)
        [ count <-- c ~width:8 0 ]
        [ count <-- (v count +: c ~width:8 1) ];
    ];
  Builder.finish b

(* Counter without any reset: stays unknown forever. *)
let counter_without_reset () =
  let b = Builder.create "cnt_free" in
  let _en = Builder.input b "en" 1 in
  let count = Builder.output b "count" 8 in
  Builder.sync b "tick" [ count <-- (v count +: c ~width:8 1) ];
  Builder.finish b

let test_powerup_unknown () =
  let sim = X.create (Backend.Lower.lower (counter_with_reset ())) in
  X.set_input sim "reset" (Bitvec.of_int ~width:1 0);
  X.settle sim;
  Alcotest.(check string) "all X at power-up" "xxxxxxxx"
    (X.output_string sim "count");
  Alcotest.(check bool) "output unknown" false (X.output_known sim "count")

let test_reset_initializes () =
  let sim = X.create (Backend.Lower.lower (counter_with_reset ())) in
  X.set_input sim "reset" (Bitvec.of_int ~width:1 1);
  X.step sim;
  Alcotest.(check string) "known zero after reset" "00000000"
    (X.output_string sim "count");
  Alcotest.(check int) "no unknown ffs" 0 (X.unknown_ffs sim);
  X.set_input sim "reset" (Bitvec.of_int ~width:1 0);
  X.run sim 3;
  Alcotest.(check string) "counts cleanly" "00000011"
    (X.output_string sim "count")

let test_missing_reset_detected () =
  let sim = X.create (Backend.Lower.lower (counter_without_reset ())) in
  X.set_input sim "en" (Bitvec.of_int ~width:1 1);
  X.run sim 20;
  (* X + 1 stays X forever *)
  Alcotest.(check bool) "still unknown" true (X.unknown_ffs sim > 0);
  match X.unknown_outputs sim with
  | [ ("count", n) ] -> Alcotest.(check bool) "bits flagged" true (n > 0)
  | _ -> Alcotest.fail "expected count to be flagged"

let test_unknown_inputs_propagate () =
  let b = Builder.create "mixer" in
  let a = Builder.input b "a" 4 in
  let x = Builder.input b "x" 4 in
  let y = Builder.output b "y" 4 in
  Builder.comb b "mix" [ y <-- (v a &: v x) ];
  let sim = X.create (Backend.Lower.lower (Builder.finish b)) in
  X.set_input sim "a" (Bitvec.of_int ~width:4 0b0011);
  X.set_input_x sim "x";
  X.settle sim;
  (* AND with 0 is 0 even against X; AND with 1 stays X *)
  Alcotest.(check string) "controlling zeros win" "00xx"
    (X.output_string sim "y")

let test_i2c_outputs_known_after_reset () =
  (* The I2C master gates its unknown shift register behind the running
     flag, so all bus outputs are defined right after reset — which a
     two-valued simulator could never demonstrate. *)
  let nl = Backend.Lower.lower (Expocu.I2c.osss_module ()) in
  let sim = X.create nl in
  X.set_input sim "reset" (Bitvec.of_int ~width:1 1);
  X.set_input sim "go" (Bitvec.of_int ~width:1 0);
  X.set_input sim "dev_addr" (Bitvec.of_int ~width:7 0);
  X.set_input sim "reg_addr" (Bitvec.of_int ~width:8 0);
  X.set_input sim "data" (Bitvec.of_int ~width:8 0);
  X.set_input sim "sda_in" (Bitvec.of_int ~width:1 1);
  X.step sim;
  X.set_input sim "reset" (Bitvec.of_int ~width:1 0);
  X.step sim;
  List.iter
    (fun out ->
      Alcotest.(check bool) (out ^ " known") true (X.output_known sim out))
    [ "scl"; "sda_out"; "sda_oe"; "busy"; "done"; "ack_error" ]

let test_expocu_reset_coverage () =
  (* Full chip: the external reset pulse plus the POR stretcher must
     leave nothing unknown. *)
  let nl = Backend.Lower.lower (Expocu.Expocu_top.rtl_top ()) in
  let sim = X.create nl in
  (* the external reset is the only initialization the chip gets *)
  X.set_input sim "ext_reset" (Bitvec.of_int ~width:1 1);
  X.set_input sim "pixel" (Bitvec.of_int ~width:8 0);
  X.set_input sim "line_valid" (Bitvec.of_int ~width:1 0);
  X.set_input sim "frame_sync" (Bitvec.of_int ~width:1 0);
  X.set_input sim "sda_in" (Bitvec.of_int ~width:1 0);
  X.set_input sim "target_bin" (Bitvec.of_int ~width:8 7);
  X.run sim 4;
  X.set_input sim "ext_reset" (Bitvec.of_int ~width:1 0);
  X.run sim 15;
  (* control-path outputs must be defined after POR *)
  List.iter
    (fun out ->
      Alcotest.(check bool) (out ^ " known") true (X.output_known sim out))
    [ "scl"; "sda_oe"; "frame_done"; "exposure"; "median_bin" ];
  (* the POR-stretched sys_reset also clears the histogram, so the
     whole chip reaches a fully defined state from ext_reset alone *)
  Alcotest.(check int) "every flip-flop initialized" 0 (X.unknown_ffs sim)

(* Property: with every input driven, four-state simulation agrees
   with the two-valued simulator — X-pessimism never invents wrong
   known values. *)
let prop_known_inputs_agree =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:40 ~name:"known inputs: xprop = two-valued"
       QCheck2.Gen.(pair (int_range 0 255) (int_range 0 255))
       (fun (a_val, b_val) ->
         let b = Builder.create "xp_prop" in
         let a = Builder.input b "a" 8 in
         let x = Builder.input b "x" 8 in
         let y = Builder.output b "y" 8 in
         let z = Builder.output b "z" 1 in
         Builder.comb b "f"
           [
             y <-- mux2 (v a <: v x) (v a +: v x) (v a ^: v x);
             z <-- (v a ==: v x);
           ];
         let nl = Backend.Lower.lower (Builder.finish b) in
         let xp = X.create nl in
         let tv = Backend.Nl_sim.create nl in
         X.set_input xp "a" (Bitvec.of_int ~width:8 a_val);
         X.set_input xp "x" (Bitvec.of_int ~width:8 b_val);
         Backend.Nl_sim.set_input_int tv "a" a_val;
         Backend.Nl_sim.set_input_int tv "x" b_val;
         X.settle xp;
         Backend.Nl_sim.settle tv;
         X.output_known xp "y"
         && X.output_string xp "y"
            = Bitvec.to_binary_string (Backend.Nl_sim.get_output tv "y")
         && X.output_string xp "z"
            = Bitvec.to_binary_string (Backend.Nl_sim.get_output tv "z")))

let suite =
  [
    Alcotest.test_case "power-up unknown" `Quick test_powerup_unknown;
    Alcotest.test_case "reset initializes" `Quick test_reset_initializes;
    Alcotest.test_case "missing reset detected" `Quick
      test_missing_reset_detected;
    Alcotest.test_case "unknown inputs propagate" `Quick
      test_unknown_inputs_propagate;
    Alcotest.test_case "i2c outputs known after reset" `Quick
      test_i2c_outputs_known_after_reset;
    Alcotest.test_case "expocu reset coverage" `Quick
      test_expocu_reset_coverage;
    prop_known_inputs_agree;
  ]

let () = Alcotest.run "xprop" [ ("xprop", suite) ]
