(* Tests for the osss.obs observability library: the JSON codec, the
   span tracer, histograms, gauges, Perf snapshots, activity profiles,
   the schema-versioned run report, and the span coverage of the
   simulator / synthesis hot paths. *)

open Hdl

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* Collectors are process-global; every test leaves them off and empty. *)
let pristine f () =
  let finish () =
    Obs.Span.disable ();
    Obs.Span.reset ();
    Obs.Hist.disable ();
    Obs.Hist.reset_all ()
  in
  finish ();
  Fun.protect ~finally:finish f

(* ------------------------------------------------------------------ *)
(* Json                                                                *)

let test_json_roundtrip () =
  let open Obs.Json in
  let doc =
    Obj
      [
        ("int", Int 42);
        ("neg", Int (-7));
        ("float", Float 2.5);
        ("string", String "line\nquote\"backslash\\tab\t");
        ("list", List [ Bool true; Bool false; Null ]);
        ("nested", Obj [ ("empty_list", List []); ("empty_obj", Obj []) ]);
      ]
  in
  let compact = of_string (to_string doc) in
  let pretty = of_string (to_string ~pretty:true doc) in
  Alcotest.(check bool) "compact round-trip" true (compact = doc);
  Alcotest.(check bool) "pretty round-trip" true (pretty = doc)

let test_json_accessors () =
  let open Obs.Json in
  let doc = of_string {|{"a": 1, "b": [2, 3], "c": "x"}|} in
  Alcotest.(check bool) "member a" true (member "a" doc = Some (Int 1));
  Alcotest.(check bool) "member missing" true (member "z" doc = None);
  Alcotest.(check (option string)) "string_value" (Some "x")
    (Option.bind (member "c" doc) string_value);
  Alcotest.(check int) "list length" 2
    (List.length (Option.get (Option.bind (member "b" doc) to_list)))

let test_json_parse_error () =
  let bad s =
    try
      ignore (Obs.Json.of_string s);
      false
    with Obs.Json.Parse_error _ -> true
  in
  Alcotest.(check bool) "unterminated object" true (bad "{\"a\": 1");
  Alcotest.(check bool) "garbage" true (bad "nope");
  Alcotest.(check bool) "trailing junk" true (bad "{} {}")

(* ------------------------------------------------------------------ *)
(* Span                                                                *)

let test_span_disabled () =
  Alcotest.(check bool) "off by default" false (Obs.Span.enabled ());
  let r = Obs.Span.with_ ~name:"ghost" (fun () -> 42) in
  Alcotest.(check int) "transparent" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (Obs.Span.span_count ())

let test_span_nesting () =
  Obs.Span.enable ();
  Obs.Span.with_ ~name:"outer" (fun () ->
      Obs.Span.with_
        ~attrs:[ ("key", "value") ]
        ~name:"inner"
        (fun () -> ());
      Obs.Span.add_attr "note" "after-child");
  let roots = Obs.Span.root_spans () in
  Alcotest.(check int) "one root" 1 (List.length roots);
  let outer = List.hd roots in
  Alcotest.(check string) "root name" "outer" (Obs.Span.name outer);
  Alcotest.(check bool) "root attr" true
    (List.mem_assoc "note" (Obs.Span.attrs outer));
  (match Obs.Span.children outer with
  | [ inner ] ->
      Alcotest.(check string) "child name" "inner" (Obs.Span.name inner);
      Alcotest.(check (option string)) "child attr" (Some "value")
        (List.assoc_opt "key" (Obs.Span.attrs inner));
      Alcotest.(check bool) "duration non-negative" true
        (Obs.Span.duration_ms inner >= 0.0)
  | other ->
      Alcotest.failf "expected exactly one child, got %d" (List.length other));
  Alcotest.(check bool) "find_root inner" true
    (Obs.Span.find_root ~name:"inner" <> None)

let test_span_exception () =
  Obs.Span.enable ();
  (try Obs.Span.with_ ~name:"boom" (fun () -> failwith "expected")
   with Failure _ -> ());
  match Obs.Span.find_root ~name:"boom" with
  | None -> Alcotest.fail "span lost on exception"
  | Some sp ->
      Alcotest.(check bool) "exception attr" true
        (List.mem_assoc "exception" (Obs.Span.attrs sp))

let test_span_chrome_export () =
  Obs.Span.enable ();
  Obs.Span.with_ ~name:"parent" (fun () ->
      Obs.Span.with_ ~name:"child" (fun () -> ()));
  (* the array form of the trace-event format: a bare list of events *)
  let events =
    match Obs.Json.to_list (Obs.Span.to_chrome_events ()) with
    | Some evs -> evs
    | None -> Alcotest.fail "chrome export is not a JSON array"
  in
  Alcotest.(check int) "two events" 2 (List.length events);
  List.iter
    (fun ev ->
      Alcotest.(check (option string)) "complete event" (Some "X")
        (Option.bind (Obs.Json.member "ph" ev) Obs.Json.string_value);
      Alcotest.(check bool) "has ts" true (Obs.Json.member "ts" ev <> None);
      Alcotest.(check bool) "has dur" true (Obs.Json.member "dur" ev <> None))
    events;
  (* the exported text parses back *)
  Alcotest.(check bool) "chrome_json parses" true
    (Obs.Json.of_string (Obs.Span.chrome_json ()) <> Obs.Json.Null)

(* ------------------------------------------------------------------ *)
(* Hist / Gauge                                                       *)

let test_hist () =
  let h = Obs.Hist.histogram "test.hist" in
  Obs.Hist.observe_int h 99;
  Alcotest.(check int) "disabled: not recorded" 0 (Obs.Hist.count h);
  Obs.Hist.enable ();
  List.iter (Obs.Hist.observe_int h) [ 1; 2; 3; 4; 100 ];
  Alcotest.(check int) "count" 5 (Obs.Hist.count h);
  Alcotest.(check (float 1e-9)) "sum" 110.0 (Obs.Hist.sum h);
  Alcotest.(check (float 1e-9)) "mean" 22.0 (Obs.Hist.mean h);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Obs.Hist.min_value h);
  Alcotest.(check (float 1e-9)) "max" 100.0 (Obs.Hist.max_value h);
  Alcotest.(check bool) "same name, same histogram" true
    (Obs.Hist.histogram "test.hist" == h);
  let j = Obs.Hist.to_json h in
  Alcotest.(check bool) "json has buckets" true
    (Obs.Json.member "buckets" j <> None)

let test_hist_percentile () =
  Obs.Hist.enable ();
  let h = Obs.Hist.histogram "test.pct" in
  List.iter (Obs.Hist.observe_int h) [ 1; 2; 4; 8 ];
  (* power-of-two buckets hold exactly one observation each, so the
     interpolated percentiles are exact *)
  Alcotest.(check (float 1e-9)) "p0 is the min" 1.0 (Obs.Hist.percentile h 0.0);
  Alcotest.(check (float 1e-9)) "p50" 4.0 (Obs.Hist.percentile h 50.0);
  Alcotest.(check (float 1e-9)) "p100 is the max" 8.0
    (Obs.Hist.percentile h 100.0);
  Alcotest.(check bool) "monotone in q" true
    (Obs.Hist.percentile h 25.0 <= Obs.Hist.percentile h 75.0);
  let single = Obs.Hist.histogram "test.pct.single" in
  List.iter (Obs.Hist.observe_int single) [ 5; 5; 5 ];
  Alcotest.(check (float 1e-9)) "single-valued bucket exact" 5.0
    (Obs.Hist.percentile single 50.0);
  Alcotest.(check (float 1e-9)) "clamped above" 5.0
    (Obs.Hist.percentile single 400.0);
  Alcotest.(check (float 1e-9)) "empty histogram" 0.0
    (Obs.Hist.percentile (Obs.Hist.histogram "test.pct.empty") 50.0)

let test_gauge () =
  let g = Obs.Gauge.gauge "test.gauge" in
  Obs.Gauge.set_int g 7;
  Obs.Gauge.add g 0.5;
  Alcotest.(check (float 1e-9)) "value" 7.5 (Obs.Gauge.value g);
  Alcotest.(check bool) "in all_to_json" true
    (Obs.Json.member "test.gauge" (Obs.Gauge.all_to_json ()) <> None)

(* ------------------------------------------------------------------ *)
(* Perf snapshot/diff                                                  *)

let test_perf_snapshot () =
  let c = Perf.counter "test.obs.snapshot" in
  Perf.incr c;
  let before = Perf.snapshot () in
  Perf.incr ~by:3 c;
  let deltas = Perf.since before in
  Alcotest.(check (option int)) "delta of bumped counter" (Some 3)
    (List.assoc_opt "test.obs.snapshot" deltas);
  Alcotest.(check bool) "quiet counters excluded" true
    (List.for_all (fun (_, d) -> d <> 0) deltas);
  let after = Perf.snapshot () in
  Alcotest.(check bool) "no-change diff is empty of this counter" true
    (List.assoc_opt "test.obs.snapshot" (Perf.diff ~before:after ~after) = None)

(* ------------------------------------------------------------------ *)
(* Profile                                                             *)

let test_profile_top () =
  let entries = Obs.Profile.top ~k:2 [ ("a", 1); ("b", 6); ("c", 3) ] in
  Alcotest.(check (list string)) "ranked" [ "b"; "c" ]
    (List.map (fun e -> e.Obs.Profile.label) entries);
  Alcotest.(check (float 1e-9)) "share over full total" 0.6
    (List.hd entries).Obs.Profile.share;
  let table = Obs.Profile.table ~title:"hot things" entries in
  Alcotest.(check bool) "table titled" true (contains "hot things" table);
  Alcotest.(check bool) "table lists winner" true (contains "b" table)

let test_profile_by_module () =
  let agg =
    Obs.Profile.by_module
      [ ("u_i2c.status", 3); ("u_i2c.bit", 2); ("u_hist.read", 4); ("top", 1) ]
  in
  Alcotest.(check (option int)) "u_i2c" (Some 5) (List.assoc_opt "u_i2c" agg);
  Alcotest.(check (option int)) "u_hist" (Some 4) (List.assoc_opt "u_hist" agg);
  Alcotest.(check (option int)) "no-dot name kept" (Some 1)
    (List.assoc_opt "top" agg)

let test_profile_by_module_degenerate () =
  (* Names without a hierarchy separator, or with a leading one, must
     stay whole — nothing may land in an invisible ""-module bucket. *)
  let agg =
    Obs.Profile.by_module [ ("plain", 3); (".leading", 2); ("a.b", 1) ]
  in
  Alcotest.(check (option int)) "no empty-string bucket" None
    (List.assoc_opt "" agg);
  Alcotest.(check (option int)) "separator-free name is its own module"
    (Some 3) (List.assoc_opt "plain" agg);
  Alcotest.(check (option int)) "leading-dot name kept whole" (Some 2)
    (List.assoc_opt ".leading" agg);
  Alcotest.(check (option int)) "normal name still split" (Some 1)
    (List.assoc_opt "a" agg);
  Alcotest.(check int) "every count lands somewhere" 6
    (List.fold_left (fun acc (_, n) -> acc + n) 0 agg)

(* ------------------------------------------------------------------ *)
(* Run report                                                          *)

let test_report_roundtrip () =
  Obs.Hist.enable ();
  Obs.Hist.observe_int (Obs.Hist.histogram "test.report.hist") 5;
  let report =
    Obs.Report.make
      ~profiles:[ ("hot_nets", Obs.Profile.top [ ("n1", 2); ("n2", 1) ]) ]
      ~extra:[ ("workload", Obs.Json.String "unit-test") ]
      ~run:"test" ()
  in
  (match Obs.Report.validate report with
  | Ok () -> ()
  | Error e -> Alcotest.failf "fresh report invalid: %s" e);
  (* full serialize/parse/validate round trip, as CI does it *)
  (match Obs.Report.validate_string (Obs.Json.to_string ~pretty:true report) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "round-tripped report invalid: %s" e);
  Alcotest.(check (option string)) "extra preserved" (Some "unit-test")
    (Option.bind (Obs.Json.member "workload" report) Obs.Json.string_value)

let test_report_rejects_corrupt () =
  let report = Obs.Report.make ~run:"test" () in
  let patch key value =
    match report with
    | Obs.Json.Obj kvs ->
        Obs.Json.Obj (List.map (fun (k, v) -> if k = key then (k, value) else (k, v)) kvs)
    | _ -> Alcotest.fail "report is not an object"
  in
  let rejected doc =
    match Obs.Report.validate doc with Ok () -> false | Error _ -> true
  in
  Alcotest.(check bool) "wrong schema" true
    (rejected (patch "schema" (Obs.Json.String "osss.run-report/v999")));
  Alcotest.(check bool) "non-integer counters" true
    (rejected
       (patch "counters" (Obs.Json.Obj [ ("x", Obs.Json.String "nope") ])));
  Alcotest.(check bool) "spans not a list" true
    (rejected (patch "spans" (Obs.Json.Int 3)));
  Alcotest.(check bool) "not even an object" true
    (rejected (Obs.Json.List []));
  Alcotest.(check bool) "garbage text" true
    (match Obs.Report.validate_string "]]" with
    | Ok () -> false
    | Error _ -> true)

(* A report as PR-3-era tooling wrote it (schema v1, no coverage
   section), frozen as text: old artifacts must keep validating. *)
let v1_fixture =
  {|{
  "schema": "osss.run-report/v1",
  "run": "pr3-era",
  "counters": {"rtl_sim.steps": 10},
  "histograms": {"h": {"count": 1, "sum": 2.0, "buckets": [[2.0, 1]]}},
  "gauges": {},
  "spans": [],
  "profiles": {"hot_nets": []}
}|}

let test_report_v1_regression () =
  (match Obs.Report.validate_string v1_fixture with
  | Ok () -> ()
  | Error e -> Alcotest.failf "v1 report rejected: %s" e);
  (* ...but a v1 stamp cannot carry the v2 coverage section *)
  let with_coverage =
    match Obs.Json.of_string v1_fixture with
    | Obs.Json.Obj kvs ->
        Obs.Json.Obj (kvs @ [ ("coverage", Obs.Json.Obj []) ])
    | _ -> Alcotest.fail "fixture is not an object"
  in
  Alcotest.(check bool) "v1 with coverage rejected" true
    (match Obs.Report.validate with_coverage with
    | Ok () -> false
    | Error _ -> true)

let test_report_v2_coverage () =
  let db = Cover.Db.make ~run:"unit" () in
  let report =
    Obs.Report.make ~coverage:(Cover.Db.to_json db) ~run:"test" ()
  in
  (match Obs.Report.validate report with
  | Ok () -> ()
  | Error e -> Alcotest.failf "v2 report with coverage invalid: %s" e);
  let patched value =
    match report with
    | Obs.Json.Obj kvs ->
        Obs.Json.Obj
          (List.map (fun (k, v) -> if k = "coverage" then (k, value) else (k, v)) kvs)
    | _ -> Alcotest.fail "report is not an object"
  in
  let rejected doc =
    match Obs.Report.validate doc with Ok () -> false | Error _ -> true
  in
  Alcotest.(check bool) "coverage must be an object" true
    (rejected (patched (Obs.Json.Int 3)));
  Alcotest.(check bool) "coverage needs a schema stamp" true
    (rejected (patched (Obs.Json.Obj [ ("toggles", Obs.Json.List []) ])));
  Alcotest.(check bool) "stamp must be a coverage-db stamp" true
    (rejected
       (patched (Obs.Json.Obj [ ("schema", Obs.Json.String "osss.run-report/v2") ])))

(* A report as PR-8-era tooling wrote it (schema v2, coverage but no
   power section), frozen as text: old artifacts must keep validating. *)
let v2_fixture =
  {|{
  "schema": "osss.run-report/v2",
  "run": "pr8-era",
  "counters": {"nl_sim.steps": 12},
  "histograms": {},
  "gauges": {},
  "spans": [],
  "profiles": {},
  "coverage": {"schema": "osss.coverage-db/v1", "run": "pr8-era",
               "toggles": [], "fsms": [], "groups": [], "monitors": []}
}|}

let append_section fixture key value =
  match Obs.Json.of_string fixture with
  | Obs.Json.Obj kvs -> Obs.Json.Obj (kvs @ [ (key, value) ])
  | _ -> Alcotest.fail "fixture is not an object"

let test_report_v2_regression () =
  (match Obs.Report.validate_string v2_fixture with
  | Ok () -> ()
  | Error e -> Alcotest.failf "v2 report rejected: %s" e);
  (* ...but neither a v1 nor a v2 stamp can carry the v3 power section *)
  let rejected doc =
    match Obs.Report.validate doc with Ok () -> false | Error _ -> true
  in
  Alcotest.(check bool) "v2 with power rejected" true
    (rejected (append_section v2_fixture "power" (Obs.Json.Obj [])));
  Alcotest.(check bool) "v1 with power rejected" true
    (rejected (append_section v1_fixture "power" (Obs.Json.Obj [])))

(* ------------------------------------------------------------------ *)
(* Span coverage of the instrumented layers                            *)

let small_design () =
  let open Builder.Dsl in
  let b = Builder.create "obs_demo" in
  let a = Builder.input b "a" 4 in
  let x = Builder.input b "x" 4 in
  let y = Builder.output b "y" 4 in
  Builder.sync b "acc" [ y <-- (v a +: v x) ];
  Builder.finish b

let test_report_v3_power () =
  let nl = Backend.Opt.optimize (Backend.Lower.lower (small_design ())) in
  let pow = Synth.Power_dyn.measure ~cycles:32 nl in
  let report =
    Obs.Report.make ~power:(Synth.Power_dyn.to_json pow) ~run:"test" ()
  in
  (match Obs.Report.validate report with
  | Ok () -> ()
  | Error e -> Alcotest.failf "v3 report with power invalid: %s" e);
  (* full serialize/parse/validate round trip, as CI does it *)
  (match Obs.Report.validate_string (Obs.Json.to_string ~pretty:true report) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "round-tripped v3 report invalid: %s" e);
  let patched value =
    match report with
    | Obs.Json.Obj kvs ->
        Obs.Json.Obj
          (List.map (fun (k, v) -> if k = "power" then (k, value) else (k, v)) kvs)
    | _ -> Alcotest.fail "report is not an object"
  in
  let rejected doc =
    match Obs.Report.validate doc with Ok () -> false | Error _ -> true
  in
  Alcotest.(check bool) "power must be an object" true
    (rejected (patched (Obs.Json.String "hot")));
  let drop key =
    match Obs.Json.member "power" report with
    | Some (Obs.Json.Obj kvs) ->
        patched (Obs.Json.Obj (List.filter (fun (k, _) -> k <> key) kvs))
    | _ -> Alcotest.fail "power section is not an object"
  in
  Alcotest.(check bool) "power needs total_energy_pj" true
    (rejected (drop "total_energy_pj"));
  Alcotest.(check bool) "power needs avg_mw" true (rejected (drop "avg_mw"));
  Alcotest.(check bool) "power needs samples" true (rejected (drop "samples"));
  let replace key value =
    match Obs.Json.member "power" report with
    | Some (Obs.Json.Obj kvs) ->
        patched
          (Obs.Json.Obj
             (List.map (fun (k, v) -> if k = key then (k, value) else (k, v)) kvs))
    | _ -> Alcotest.fail "power section is not an object"
  in
  Alcotest.(check bool) "samples must be a list" true
    (rejected (replace "samples" (Obs.Json.Int 3)));
  Alcotest.(check bool) "by_module must be a list" true
    (rejected (replace "by_module" (Obs.Json.String "u_top")));
  Alcotest.(check bool) "peak_mw must be a number" true
    (rejected (replace "peak_mw" (Obs.Json.String "1.5")))

let test_flow_span_coverage () =
  Obs.Span.enable ();
  let result = Synth.Flow.run Synth.Flow.Osss (small_design ()) in
  let root =
    match Obs.Span.find_root ~name:"flow.run" with
    | Some sp -> sp
    | None -> Alcotest.fail "no flow.run span"
  in
  List.iter
    (fun (p : Synth.Flow.pass) ->
      let sub = "flow." ^ p.Synth.Flow.pass_name in
      if Obs.Span.find ~name:sub root = None then
        Alcotest.failf "pass %s has no span" sub)
    result.Synth.Flow.passes;
  Alcotest.(check bool) "pass count sane" true
    (List.length result.Synth.Flow.passes >= 5)

let test_sim_span_coverage () =
  Obs.Span.enable ();
  Obs.Hist.enable ();
  let design = small_design () in
  (* RTL interpreter *)
  let sim = Rtl_sim.create design in
  Rtl_sim.set_input_int sim "a" 3;
  Rtl_sim.set_input_int sim "x" 4;
  Rtl_sim.step sim;
  (match Obs.Span.find_root ~name:"rtl_sim.step" with
  | None -> Alcotest.fail "no rtl_sim.step span"
  | Some sp ->
      Alcotest.(check bool) "settle nested under step" true
        (Obs.Span.find ~name:"rtl_sim.settle" sp <> None));
  (* gate-level simulator *)
  let nl = Backend.Lower.lower design in
  let gsim = Backend.Nl_sim.create nl in
  Backend.Nl_sim.set_input_int gsim "a" 3;
  Backend.Nl_sim.set_input_int gsim "x" 4;
  Backend.Nl_sim.step gsim;
  (match Obs.Span.find_root ~name:"nl_sim.step" with
  | None -> Alcotest.fail "no nl_sim.step span"
  | Some sp ->
      Alcotest.(check bool) "evals attr" true
        (List.mem_assoc "evals" (Obs.Span.attrs sp)));
  Alcotest.(check int) "results agree" 7
    (Backend.Nl_sim.get_output_int gsim "y");
  Alcotest.(check bool) "settle histogram recorded" true
    (Obs.Hist.count (Obs.Hist.histogram "rtl_sim.dirty_vars_per_settle") > 0)

let test_nl_profiling () =
  let design = small_design () in
  let nl = Backend.Lower.lower design in
  let sim = Backend.Nl_sim.create nl in
  Backend.Nl_sim.enable_profile sim;
  Backend.Nl_sim.set_input_int sim "a" 1;
  Backend.Nl_sim.set_input_int sim "x" 2;
  for i = 0 to 9 do
    Backend.Nl_sim.set_input_int sim "a" (i mod 16);
    Backend.Nl_sim.step sim
  done;
  let cells = Backend.Nl_sim.cell_activity sim in
  Alcotest.(check bool) "cell profile non-empty" true (cells <> []);
  Alcotest.(check bool) "cell counts ranked" true
    (match cells with
    | (_, a) :: (_, b) :: _ -> a >= b
    | _ -> true);
  let nets = Backend.Nl_sim.net_activity sim in
  Alcotest.(check bool) "net profile non-empty" true (nets <> []);
  Alcotest.(check bool) "port bits labelled" true
    (List.exists (fun (l, _) -> contains "a[" l || l = "a" || contains "y[" l) nets);
  Alcotest.(check bool) "toggle_total consistent" true
    (Backend.Nl_sim.toggle_total sim
    = List.fold_left (fun acc (_, c) -> acc + c) 0 nets)

let suite =
  [
    Alcotest.test_case "json round-trip" `Quick (pristine test_json_roundtrip);
    Alcotest.test_case "json accessors" `Quick (pristine test_json_accessors);
    Alcotest.test_case "json parse errors" `Quick (pristine test_json_parse_error);
    Alcotest.test_case "span disabled" `Quick (pristine test_span_disabled);
    Alcotest.test_case "span nesting" `Quick (pristine test_span_nesting);
    Alcotest.test_case "span exception" `Quick (pristine test_span_exception);
    Alcotest.test_case "span chrome export" `Quick
      (pristine test_span_chrome_export);
    Alcotest.test_case "histogram" `Quick (pristine test_hist);
    Alcotest.test_case "histogram percentile" `Quick
      (pristine test_hist_percentile);
    Alcotest.test_case "gauge" `Quick (pristine test_gauge);
    Alcotest.test_case "perf snapshot" `Quick (pristine test_perf_snapshot);
    Alcotest.test_case "profile top" `Quick (pristine test_profile_top);
    Alcotest.test_case "profile by module" `Quick
      (pristine test_profile_by_module);
    Alcotest.test_case "profile by module degenerate names" `Quick
      (pristine test_profile_by_module_degenerate);
    Alcotest.test_case "report round-trip" `Quick (pristine test_report_roundtrip);
    Alcotest.test_case "report rejects corrupt" `Quick
      (pristine test_report_rejects_corrupt);
    Alcotest.test_case "report v1 regression" `Quick
      (pristine test_report_v1_regression);
    Alcotest.test_case "report v2 regression" `Quick
      (pristine test_report_v2_regression);
    Alcotest.test_case "report v3 power" `Quick
      (pristine test_report_v3_power);
    Alcotest.test_case "report v2 coverage" `Quick
      (pristine test_report_v2_coverage);
    Alcotest.test_case "flow span coverage" `Quick
      (pristine test_flow_span_coverage);
    Alcotest.test_case "sim span coverage" `Quick
      (pristine test_sim_span_coverage);
    Alcotest.test_case "netlist profiling" `Quick (pristine test_nl_profiling);
  ]

let () = Alcotest.run "obs" [ ("obs", suite) ]
