(* Tests for the OSSS layer: classes, inheritance, templates, object
   resolution, polymorphism, shared objects, SystemC re-emission. *)

open Hdl
module CD = Osss.Class_def
module OI = Osss.Object_inst

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* A small counter class used across tests. *)
let counter_class width =
  CD.declare ~name:(Printf.sprintf "Counter%d" width)
    [ CD.field "count" width ]
    [
      CD.proc_method ~name:"Reset" ~params:[] (fun ctx ->
          [ ctx.CD.set "count" (Ir.Const (Bitvec.zero width)) ]);
      CD.proc_method ~name:"Tick" ~params:[] (fun ctx ->
          [
            ctx.CD.set "count"
              (Ir.Binop
                 (Ir.Add, ctx.CD.get "count",
                  Ir.Const (Bitvec.of_int ~width 1)));
          ]);
      CD.fn_method ~name:"Value" ~params:[] ~return:width (fun ctx ->
          ([], ctx.CD.get "count"));
    ]

(* Saturating counter overriding Tick — inheritance + override. *)
let sat_counter_class width =
  CD.declare ~parent:(counter_class width)
    ~name:(Printf.sprintf "SatCounter%d" width)
    []
    [
      CD.proc_method ~name:"Tick" ~params:[] (fun ctx ->
          let maxed =
            Ir.Binop (Ir.Eq, ctx.CD.get "count", Ir.Const (Bitvec.ones width))
          in
          [
            Ir.If
              ( maxed,
                [],
                [
                  ctx.CD.set "count"
                    (Ir.Binop
                       (Ir.Add, ctx.CD.get "count",
                        Ir.Const (Bitvec.of_int ~width 1)));
                ] );
          ]);
    ]

let test_class_layout () =
  let cls = counter_class 8 in
  Alcotest.(check int) "state width" 8 (CD.state_width cls);
  Alcotest.(check (pair int int)) "field range" (0, 8) (CD.field_range cls "count");
  let sub = sat_counter_class 8 in
  Alcotest.(check int) "inherited width" 8 (CD.state_width sub);
  Alcotest.(check int) "method count" 3 (List.length (CD.methods sub));
  Alcotest.(check bool) "subclass" true
    (CD.is_subclass sub ~of_:(counter_class 8));
  Alcotest.(check bool) "not superclass" false
    (CD.is_subclass (counter_class 8) ~of_:sub)

let test_duplicate_field_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (CD.declare ~name:"Bad"
            [ CD.field "x" 4; CD.field "x" 4 ]
            []);
       false
     with CD.Class_error _ -> true)

let test_override_signature_checked () =
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (CD.declare ~parent:(counter_class 8) ~name:"Bad" []
            [
              CD.fn_method ~name:"Tick" ~params:[] ~return:1 (fun ctx ->
                  ([], ctx.CD.get "count"));
            ]);
       false
     with CD.Class_error _ -> true)

(* Build a module holding an object and exercising method calls. *)
let counter_module cls =
  let b = Builder.create "obj_counter" in
  let reset = Builder.input b "reset" 1 in
  let enable = Builder.input b "enable" 1 in
  let out = Builder.output b "value" 8 in
  let obj = OI.instantiate b ~name:"cnt" cls in
  let _, value_e = OI.call_fn obj "Value" [] in
  Builder.sync b "drive"
    [
      Ir.If
        ( Ir.Var reset,
          OI.call obj "Reset" [],
          [ Ir.If (Ir.Var enable, OI.call obj "Tick" [], []) ] );
      Ir.Assign (out, value_e);
    ];
  Builder.finish b

let run_counter design cycles =
  let sim = Rtl_sim.create design in
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "reset" 0;
  Rtl_sim.set_input_int sim "enable" 1;
  Rtl_sim.run sim cycles;
  Rtl_sim.get_int sim "value"

let test_object_method_calls () =
  Alcotest.(check int) "ticks" 10 (run_counter (counter_module (counter_class 8)) 10)

let test_override_behaviour () =
  (* 4-bit saturating counter stops at 15. *)
  let cls = sat_counter_class 8 in
  Alcotest.(check int) "saturates" 255 (run_counter (counter_module cls) 300);
  Alcotest.(check int) "plain wraps" (300 - 256)
    (run_counter (counter_module (counter_class 8)) 300)

let test_template_memoization () =
  let a = Expocu.Sync.sync_register ~regsize:4 ~resetvalue:0 in
  let b = Expocu.Sync.sync_register ~regsize:4 ~resetvalue:0 in
  let c = Expocu.Sync.sync_register ~regsize:8 ~resetvalue:0 in
  Alcotest.(check bool) "same specialization shared" true (a == b);
  Alcotest.(check bool) "different parameters distinct" true (a != c);
  Alcotest.(check string) "specialized name" "SyncRegister<4,0>"
    (CD.class_name a)

let test_call_errors () =
  let b = Builder.create "errs" in
  let obj = OI.instantiate b ~name:"o" (counter_class 8) in
  Alcotest.(check bool) "unknown method" true
    (try ignore (OI.call obj "Nope" []); false
     with OI.Call_error _ -> true);
  Alcotest.(check bool) "arity" true
    (try ignore (OI.call obj "Tick" [ Ir.Const (Bitvec.zero 1) ]); false
     with OI.Call_error _ -> true);
  Alcotest.(check bool) "fn via call" true
    (try ignore (OI.call obj "Value" []); false
     with OI.Call_error _ -> true)

(* ---------------- polymorphism ---------------- *)

(* ALU variants with a common Execute interface, as in §6. *)
let alu_base =
  CD.declare ~name:"AluBase"
    [ CD.field "acc" 8 ]
    [
      CD.fn_method ~name:"Execute" ~params:[ ("A", 8); ("B", 8) ] ~return:8
        (fun ctx -> ([], Ir.Binop (Ir.Add, ctx.CD.arg "A", ctx.CD.arg "B")));
    ]

let alu_variant name op =
  CD.declare ~parent:alu_base ~name []
    [
      CD.fn_method ~name:"Execute" ~params:[ ("A", 8); ("B", 8) ] ~return:8
        (fun ctx -> ([], Ir.Binop (op, ctx.CD.arg "A", ctx.CD.arg "B")));
    ]

let poly_alu_module () =
  let b = Builder.create "poly_alu" in
  let reset = Builder.input b "reset" 1 in
  let sel = Builder.input b "sel" 2 in
  let a = Builder.input b "a" 8 in
  let x = Builder.input b "x" 8 in
  let y = Builder.output b "y" 8 in
  let variants =
    [ alu_variant "AluAdd" Ir.Add; alu_variant "AluSub" Ir.Sub;
      alu_variant "AluXor" Ir.Xor ]
  in
  let poly = Osss.Polymorph.instantiate b ~name:"alu" ~base:alu_base variants in
  let _, result = Osss.Polymorph.vcall_fn poly "Execute" [ Ir.Var a; Ir.Var x ] in
  Builder.sync b "drive"
    [
      Ir.If
        ( Ir.Var reset,
          Osss.Polymorph.assign_class poly (List.nth variants 0),
          [
            (* "new" the variant selected by the input *)
            Ir.Case
              ( Ir.Var sel,
                [
                  (Bitvec.of_int ~width:2 0,
                   Osss.Polymorph.assign_class poly (List.nth variants 0));
                  (Bitvec.of_int ~width:2 1,
                   Osss.Polymorph.assign_class poly (List.nth variants 1));
                  (Bitvec.of_int ~width:2 2,
                   Osss.Polymorph.assign_class poly (List.nth variants 2));
                ],
                [] );
          ] );
      Ir.Assign (y, result);
    ];
  Builder.finish b

let test_polymorphic_dispatch () =
  let sim = Rtl_sim.create (poly_alu_module ()) in
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "reset" 0;
  Rtl_sim.set_input_int sim "a" 200;
  Rtl_sim.set_input_int sim "x" 100;
  let expect sel value label =
    Rtl_sim.set_input_int sim "sel" sel;
    Rtl_sim.step sim;
    (* One more cycle: the object is re-classed at the first edge, the
       dispatched result registers at the second. *)
    Rtl_sim.step sim;
    Alcotest.(check int) label value (Rtl_sim.get_int sim "y")
  in
  expect 0 44 "virtual add";
  expect 1 100 "virtual sub";
  expect 2 172 "virtual xor"

let test_polymorphism_synthesizes () =
  let design = poly_alu_module () in
  let nl = Backend.Lower.lower design in
  match Backend.Equiv.ir_vs_netlist ~cycles:300 design nl with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m

let test_poly_rejects_foreign_class () =
  let b = Builder.create "bad_poly" in
  Alcotest.(check bool) "raises" true
    (try
       ignore
         (Osss.Polymorph.instantiate b ~name:"p" ~base:alu_base
            [ counter_class 8 ]);
       false
     with Osss.Polymorph.Poly_error _ -> true)

(* ---------------- shared objects ---------------- *)

let shared_counter_module policy =
  let b = Builder.create "shared_counter" in
  let reset = Builder.input b "reset" 1 in
  let req0 = Builder.input b "req0" 1 in
  let req1 = Builder.input b "req1" 1 in
  let req2 = Builder.input b "req2" 1 in
  let value = Builder.output b "value" 8 in
  let grants = Builder.output b "grants" 3 in
  let shared =
    Osss.Shared.create b ~name:"cnt" ~class_:(counter_class 8) ~policy
      ~clients:3 ~methods:[ "Tick"; "Value"; "Reset" ] ~reset
  in
  (* Each external request line drives one client requesting Tick. *)
  List.iteri
    (fun i req ->
      let cl = Osss.Shared.client shared i in
      Builder.comb b
        (Printf.sprintf "client%d" i)
        [
          Ir.Assign (Osss.Shared.req cl, Ir.Var req);
          Ir.Assign
            ( Osss.Shared.op cl,
              Ir.Const
                (Bitvec.of_int ~width:2 (Osss.Shared.op_index shared "Tick")) );
        ])
    [ req0; req1; req2 ];
  let g i = Osss.Shared.granted (Osss.Shared.client shared i) in
  Builder.comb b "observe"
    [
      Ir.Assign
        (value, Osss.Object_inst.field_expr (Osss.Shared.state shared) "count");
      Ir.Assign (grants, Ir.Concat (g 2, Ir.Concat (g 1, g 0)));
    ];
  Builder.finish b

let test_shared_serializes () =
  (* Three clients requesting every cycle: exactly one Tick per cycle. *)
  let sim = Rtl_sim.create (shared_counter_module Osss.Shared.Round_robin) in
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "reset" 0;
  Rtl_sim.set_input_int sim "req0" 1;
  Rtl_sim.set_input_int sim "req1" 1;
  Rtl_sim.set_input_int sim "req2" 1;
  Rtl_sim.run sim 9;
  Alcotest.(check int) "9 serialized ticks" 9 (Rtl_sim.get_int sim "value")

let grant_sequence policy reqs cycles =
  let sim = Rtl_sim.create (shared_counter_module policy) in
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "reset" 0;
  let r0, r1, r2 = reqs in
  Rtl_sim.set_input_int sim "req0" r0;
  Rtl_sim.set_input_int sim "req1" r1;
  Rtl_sim.set_input_int sim "req2" r2;
  List.init cycles (fun _ ->
      Rtl_sim.settle sim;
      let g = Rtl_sim.get_int sim "grants" in
      Rtl_sim.step sim;
      g)

let test_round_robin_rotates () =
  let gs = grant_sequence Osss.Shared.Round_robin (1, 1, 1) 6 in
  (* After reset last=0, so priority order is 1,2,0 repeating fairly. *)
  Alcotest.(check (list int)) "rotation" [ 2; 4; 1; 2; 4; 1 ] gs

let test_fixed_priority_starves () =
  let gs = grant_sequence Osss.Shared.Fixed_priority (1, 1, 1) 4 in
  Alcotest.(check (list int)) "client 0 always wins" [ 1; 1; 1; 1 ] gs

let test_fcfs_by_age () =
  (* Two contending clients: the one passed over accumulates age and
     wins the next cycle, so FCFS alternates where fixed priority would
     starve client 1. *)
  let gs = grant_sequence Osss.Shared.Fcfs (1, 1, 0) 4 in
  Alcotest.(check (list int)) "alternation by age" [ 1; 2; 1; 2 ] gs

let test_shared_synthesizes () =
  let design = shared_counter_module Osss.Shared.Round_robin in
  let nl = Backend.Lower.lower design in
  match Backend.Equiv.ir_vs_netlist ~cycles:300 design nl with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m

let test_custom_scheduler () =
  (* user-defined policy: client 2 has absolute priority, the others in
     fixed order below it *)
  let policy =
    Osss.Shared.Custom
      ( "client2-first",
        fun ~reqs ~grant ~last_grant ->
          ignore last_grant;
          let r i = Ir.Var reqs.(i) in
          let n e = Ir.Unop (Ir.Not, e) in
          [
            Ir.Assign_slice (grant, 2, r 2);
            Ir.Assign_slice (grant, 0, Ir.Binop (Ir.And, r 0, n (r 2)));
            Ir.Assign_slice
              ( grant,
                1,
                Ir.Binop (Ir.And, r 1, Ir.Binop (Ir.And, n (r 0), n (r 2))) );
          ] )
  in
  let gs = grant_sequence policy (1, 1, 1) 4 in
  Alcotest.(check (list int)) "client 2 always wins" [ 4; 4; 4; 4 ] gs;
  let gs = grant_sequence policy (1, 1, 0) 4 in
  Alcotest.(check (list int)) "then client 0" [ 1; 1; 1; 1 ] gs;
  (* custom-scheduled shared objects synthesize and match their netlist *)
  let design = shared_counter_module policy in
  match Backend.Equiv.ir_vs_netlist ~cycles:200 design
          (Backend.Lower.lower design) with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m

(* Shared object with a returning method: one client writes, another
   reads back through the result register. *)
let shared_result_module () =
  let b = Builder.create "shared_result" in
  let reset = Builder.input b "reset" 1 in
  let do_tick = Builder.input b "do_tick" 1 in
  let do_read = Builder.input b "do_read" 1 in
  let result = Builder.output b "result" 8 in
  let done0 = Builder.output b "done0" 1 in
  let done1 = Builder.output b "done1" 1 in
  let shared =
    Osss.Shared.create b ~name:"cnt" ~class_:(counter_class 8)
      ~policy:Osss.Shared.Fixed_priority ~clients:2
      ~methods:[ "Tick"; "Value" ] ~reset
  in
  let c0 = Osss.Shared.client shared 0 in
  let c1 = Osss.Shared.client shared 1 in
  Builder.comb b "client0"
    [
      Ir.Assign (Osss.Shared.req c0, Ir.Var do_tick);
      Ir.Assign
        ( Osss.Shared.op c0,
          Ir.Const (Bitvec.of_int ~width:1 (Osss.Shared.op_index shared "Tick")) );
    ];
  Builder.comb b "client1"
    [
      Ir.Assign (Osss.Shared.req c1, Ir.Var do_read);
      Ir.Assign
        ( Osss.Shared.op c1,
          Ir.Const (Bitvec.of_int ~width:1 (Osss.Shared.op_index shared "Value")) );
    ];
  Builder.comb b "observe"
    [
      Ir.Assign (result, Osss.Shared.result shared);
      Ir.Assign (done0, Osss.Shared.done_ c0);
      Ir.Assign (done1, Osss.Shared.done_ c1);
    ];
  Builder.finish b

let test_shared_returning_method () =
  let sim = Rtl_sim.create (shared_result_module ()) in
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "reset" 0;
  (* client 0 ticks three times *)
  Rtl_sim.set_input_int sim "do_tick" 1;
  Rtl_sim.run sim 3;
  Rtl_sim.set_input_int sim "do_tick" 0;
  Alcotest.(check int) "tick completion flagged" 1 (Rtl_sim.get_int sim "done0");
  (* client 1 reads the value back through the shared interface; the
     done strobe lasts exactly one cycle *)
  Rtl_sim.set_input_int sim "do_read" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "do_read" 0;
  Alcotest.(check int) "read completion flagged" 1 (Rtl_sim.get_int sim "done1");
  Alcotest.(check int) "result register holds the count" 3
    (Rtl_sim.get_int sim "result");
  Rtl_sim.step sim;
  Alcotest.(check int) "done strobe clears" 0 (Rtl_sim.get_int sim "done1");
  Alcotest.(check int) "result persists" 3 (Rtl_sim.get_int sim "result")

(* ---------------- resolution output ---------------- *)

let test_resolve_method_text () =
  let cls = Expocu.Sync.sync_register ~regsize:4 ~resetvalue:0 in
  let text = Osss.Resolve.emit_method cls "Write" in
  Alcotest.(check bool) "non-member name" true
    (contains "_SyncRegister<4,0>_Write_1_" text);
  Alcotest.(check bool) "takes _this_" true
    (contains "sc_biguint<4>& _this_" text);
  let cls_text = Osss.Resolve.emit_class cls in
  Alcotest.(check bool) "layout comment" true
    (contains "resolved to sc_biguint<4>" cls_text)

let test_resolve_module_text () =
  let flat = Elaborate.flatten (Expocu.Sync.osss_module ()) in
  let text = Osss.Resolve.emit_module flat in
  Alcotest.(check bool) "SC_MODULE" true (contains "SC_MODULE( sync_osss )" text);
  Alcotest.(check bool) "cthread" true (contains "SC_CTHREAD" text);
  Alcotest.(check bool) "state vector member" true
    (contains "sc_biguint<4> data_sync_reg" text)

let suite =
  [
    Alcotest.test_case "class layout" `Quick test_class_layout;
    Alcotest.test_case "duplicate field" `Quick test_duplicate_field_rejected;
    Alcotest.test_case "override signature" `Quick test_override_signature_checked;
    Alcotest.test_case "object method calls" `Quick test_object_method_calls;
    Alcotest.test_case "override behaviour" `Quick test_override_behaviour;
    Alcotest.test_case "template memoization" `Quick test_template_memoization;
    Alcotest.test_case "call errors" `Quick test_call_errors;
    Alcotest.test_case "polymorphic dispatch" `Quick test_polymorphic_dispatch;
    Alcotest.test_case "polymorphism synthesizes" `Quick
      test_polymorphism_synthesizes;
    Alcotest.test_case "poly rejects foreign class" `Quick
      test_poly_rejects_foreign_class;
    Alcotest.test_case "shared serializes" `Quick test_shared_serializes;
    Alcotest.test_case "round robin rotates" `Quick test_round_robin_rotates;
    Alcotest.test_case "fixed priority" `Quick test_fixed_priority_starves;
    Alcotest.test_case "fcfs by age" `Quick test_fcfs_by_age;
    Alcotest.test_case "shared synthesizes" `Quick test_shared_synthesizes;
    Alcotest.test_case "shared returning method" `Quick
      test_shared_returning_method;
    Alcotest.test_case "custom scheduler" `Quick test_custom_scheduler;
    Alcotest.test_case "resolve method text" `Quick test_resolve_method_text;
    Alcotest.test_case "resolve module text" `Quick test_resolve_module_text;
  ]

let () = Alcotest.run "osss" [ ("osss", suite) ]
