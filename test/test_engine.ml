(* Tests for the unified engine abstraction: adapters at all three
   simulation levels, the consolidated trace, and the N-way lockstep
   differential harness with its failure paths (fault localization,
   window shrinking, stimulus override, VCD dump). *)

open Hdl
open Builder.Dsl
module N = Backend.Netlist
module E = Backend.Equiv

let contains needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

(* An 8-bit accumulator: y <= y + x every cycle. *)
let acc_design () =
  let b = Builder.create "acc" in
  let x = Builder.input b "x" 8 in
  let y = Builder.output b "y" 8 in
  Builder.sync b "accumulate" [ y <-- (v y +: v x) ];
  Builder.finish b

(* The same accumulator as an untimed behavioural model on the
   discrete-event kernel. *)
let behavioural_acc ?label () =
  let k = Sim.Kernel.create () in
  let xr = ref (Bitvec.zero 8) in
  let acc = ref (Bitvec.zero 8) in
  let t =
    Sim.Kernel_engine.create k
      ~step:(fun () ->
        acc := Bitvec.add !acc !xr;
        Sim.Kernel.run_for k 10)
      ()
  in
  Sim.Kernel_engine.add_input t "x" ~width:8 (fun bv -> xr := bv);
  Sim.Kernel_engine.add_output t "y" ~width:8 (fun () -> !acc);
  Sim.Kernel_engine.engine ?label t

let test_engine_interface () =
  let e = Rtl_engine.create (acc_design ()) in
  Alcotest.(check string) "kind" "rtl-interp" (Engine.kind e);
  Alcotest.(check (list (pair string int))) "inputs" [ ("x", 8) ]
    (Engine.inputs e);
  Alcotest.(check (list (pair string int))) "outputs" [ ("y", 8) ]
    (Engine.outputs e);
  Engine.set_input_int e "x" 5;
  Engine.step e;
  Engine.step e;
  Alcotest.(check int) "accumulated" 10 (Engine.get_int e "y");
  Alcotest.(check int) "cycles" 2 (Engine.cycles e);
  Alcotest.(check bool) "has stats" true (Engine.stats e <> [])

let test_adapter_kinds () =
  let design = acc_design () in
  let nl = Backend.Lower.lower design in
  Alcotest.(check string) "event kind" "netlist-event"
    (Engine.kind (Backend.Nl_engine.create nl));
  Alcotest.(check string) "full kind" "netlist-full"
    (Engine.kind (Backend.Nl_engine.create ~mode:Backend.Nl_sim.Full_eval nl));
  Alcotest.(check string) "behavioural kind" "behavioural"
    (Engine.kind (behavioural_acc ()));
  (* a netlist engine echoes driven inputs, so it is fully traceable *)
  let e = Backend.Nl_engine.create nl in
  Engine.set_input_int e "x" 42;
  Alcotest.(check int) "input echo" 42 (Engine.get_int e "x")

let test_three_level_lockstep () =
  let design = acc_design () in
  let nl = Backend.Opt.optimize (Backend.Lower.lower design) in
  match
    E.differential ~cycles:300
      [
        (fun () -> behavioural_acc ~label:"beh:acc" ());
        (fun () -> Rtl_engine.create ~label:"rtl:acc" design);
        (fun () -> Backend.Nl_engine.create ~label:"gates:acc" nl);
      ]
  with
  | Ok n -> Alcotest.(check int) "cycles compared" 300 n
  | Error d -> Alcotest.failf "%a" E.pp_divergence d

let test_fault_injection_shrinks () =
  let design = acc_design () in
  let factories =
    [
      (fun () -> Rtl_engine.create ~label:"ref" design);
      (fun () ->
        Engine.inject_fault ~from_cycle:25 ~port:"y"
          (Rtl_engine.create ~label:"faulty" design));
    ]
  in
  match E.differential ~cycles:200 factories with
  | Ok _ -> Alcotest.fail "seeded fault not detected"
  | Error d ->
      Alcotest.(check string) "port" "y" d.E.first.E.port;
      (* the fault arms once the faulty engine has stepped 25 times *)
      Alcotest.(check int) "cycle" 24 d.E.first.E.at_cycle;
      Alcotest.(check bool) "faulty engine named" true
        (contains "faulty" d.E.first.E.got_engine);
      (* minimal: any shorter replay never arms the cycle-count fault *)
      Alcotest.(check int) "shrunk window" 25 (Array.length d.E.window);
      (match d.E.replay with
      | Some m -> Alcotest.(check string) "replay port" "y" m.E.port
      | None -> Alcotest.fail "reproducer window does not replay")

(* y = a AND b, and a hand-corrupted netlist computing OR instead. *)
let and_design () =
  let b = Builder.create "andgate" in
  let a = Builder.input b "a" 1 in
  let bb = Builder.input b "b" 1 in
  let y = Builder.output b "y" 1 in
  Builder.comb b "gate" [ y <-- (v a &: v bb) ];
  Builder.finish b

let corrupted_netlist () =
  let nl = N.create ~name:"andgate_corrupt" () in
  let a = N.add_input nl "a" 1 in
  let b = N.add_input nl "b" 1 in
  N.add_output nl "y" [| N.or2 nl a.(0) b.(0) |];
  nl

(* Directed stimulus makes the corruption visible exactly once, so the
   report's cycle and port are fully predictable, and the window must
   shrink to that single cycle. *)
let test_corrupted_netlist_localized () =
  let drive cycle (name, _) =
    Bitvec.of_int ~width:1
      (match name with "a" -> 1 | _ -> if cycle = 5 then 0 else 1)
  in
  match
    E.differential ~cycles:50 ~drive ~dump_vcd:true
      [
        (fun () -> Rtl_engine.create ~label:"rtl:and" (and_design ()));
        (fun () -> Backend.Nl_engine.create ~label:"gates:or" (corrupted_netlist ()));
      ]
  with
  | Ok _ -> Alcotest.fail "corrupted netlist not detected"
  | Error d ->
      Alcotest.(check int) "divergence cycle" 5 d.E.first.E.at_cycle;
      Alcotest.(check string) "divergence port" "y" d.E.first.E.port;
      Alcotest.(check int) "expected (and)" 0 (Bitvec.to_int d.E.first.E.expected);
      Alcotest.(check int) "got (or)" 1 (Bitvec.to_int d.E.first.E.got);
      Alcotest.(check string) "diverging engine" "gates:or"
        d.E.first.E.got_engine;
      Alcotest.(check int) "window shrunk to one cycle" 1
        (Array.length d.E.window);
      Alcotest.(check int) "window carries driving inputs" 0
        (Bitvec.to_int (List.assoc "b" d.E.window.(0)));
      (match d.E.vcd with
      | Some text ->
          Alcotest.(check bool) "vcd has var decls" true
            (contains "$var" text);
          Alcotest.(check bool) "vcd scoped per engine" true
            (contains "gates:or" text)
      | None -> Alcotest.fail "vcd dump missing")

(* With the override holding both inputs high, AND and OR agree, so the
   corrupted netlist must NOT be flagged — proving the random stimulus
   is really replaced by the callback. *)
let test_drive_override_honored () =
  let drive _ (_, _) = Bitvec.of_int ~width:1 1 in
  match
    E.differential ~cycles:100 ~drive
      [
        (fun () -> Rtl_engine.create (and_design ()));
        (fun () -> Backend.Nl_engine.create (corrupted_netlist ()));
      ]
  with
  | Ok n -> Alcotest.(check int) "no divergence under override" 100 n
  | Error d -> Alcotest.failf "override ignored: %a" E.pp_divergence d

let test_consolidated_trace () =
  let design = acc_design () in
  let e1 = Rtl_engine.create ~label:"rtl" design in
  let e2 = Backend.Nl_engine.create ~label:"gates" (Backend.Lower.lower design) in
  let tr = Engine.Trace.create [ e1; e2 ] in
  Alcotest.(check int) "every port of every engine" 4
    (Engine.Trace.signal_count tr);
  Engine.Trace.sample tr;
  List.iter
    (fun e ->
      Engine.set_input_int e "x" 3;
      Engine.step e)
    [ e1; e2 ];
  Engine.Trace.sample tr;
  let text = Engine.Trace.contents tr in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains needle text))
    [ "$var"; "$scope"; "rtl"; "gates"; "$enddefinitions" ]

let test_inject_fault_unknown_port () =
  let e = Rtl_engine.create (acc_design ()) in
  Alcotest.check_raises "unknown port rejected"
    (Invalid_argument "Engine.inject_fault: no output port nope")
    (fun () -> ignore (Engine.inject_fault ~port:"nope" e))

let suite =
  [
    Alcotest.test_case "engine interface" `Quick test_engine_interface;
    Alcotest.test_case "adapter kinds" `Quick test_adapter_kinds;
    Alcotest.test_case "three-level lockstep" `Quick test_three_level_lockstep;
    Alcotest.test_case "fault injection shrinks" `Quick
      test_fault_injection_shrinks;
    Alcotest.test_case "corrupted netlist localized" `Quick
      test_corrupted_netlist_localized;
    Alcotest.test_case "drive override honored" `Quick
      test_drive_override_honored;
    Alcotest.test_case "consolidated trace" `Quick test_consolidated_trace;
    Alcotest.test_case "inject_fault validates port" `Quick
      test_inject_fault_unknown_port;
  ]

let () = Alcotest.run "engine" [ ("engine", suite) ]
