(* Tests for fixed-point format resolution, concrete values, and the
   synthesizable expression layer. *)

open Hdl
module F = Fixed
module FV = Fixed.Value
module FE = Fixed.Expr

let uq i f = F.fmt ~int_bits:i ~frac_bits:f ()
let sq i f = F.fmt ~signed:true ~int_bits:i ~frac_bits:f ()

let test_formats () =
  Alcotest.(check int) "uq4.12 width" 16 (F.fmt_width (uq 4 12));
  Alcotest.(check int) "sq7.4 width" 12 (F.fmt_width (sq 7 4));
  Alcotest.(check string) "name" "uq4.8" (F.fmt_to_string (uq 4 8));
  Alcotest.(check string) "signed name" "sq4.8" (F.fmt_to_string (sq 4 8))

let test_resolution_rules () =
  let r = F.resolve_add (uq 4 8) (uq 6 2) in
  Alcotest.(check int) "add int grows" 7 r.F.int_bits;
  Alcotest.(check int) "add frac max" 8 r.F.frac_bits;
  let m = F.resolve_mul (sq 4 8) (uq 6 2) in
  Alcotest.(check int) "mul int sums" 10 m.F.int_bits;
  Alcotest.(check int) "mul frac sums" 10 m.F.frac_bits;
  Alcotest.(check bool) "mul signedness" true m.F.signed

let test_value_roundtrip () =
  let f = uq 4 8 in
  let x = FV.of_float f 3.14159 in
  Alcotest.(check bool) "close" true (Float.abs (FV.to_float x -. 3.14159) < 0.01);
  let neg = FV.of_float (sq 4 8) (-2.5) in
  Alcotest.(check (float 1e-9)) "negative exact" (-2.5) (FV.to_float neg);
  (* saturation at the format range *)
  let sat = FV.of_float f 100.0 in
  Alcotest.(check bool) "saturates high" true (FV.to_float sat < 16.01)

let test_value_arith_exact () =
  let a = FV.of_float (uq 4 8) 1.25 and b = FV.of_float (uq 4 8) 2.5 in
  Alcotest.(check (float 1e-9)) "add" 3.75 (FV.to_float (FV.add a b));
  Alcotest.(check (float 1e-9)) "sub" (-1.25) (FV.to_float (FV.sub a b));
  Alcotest.(check (float 1e-9)) "mul" 3.125 (FV.to_float (FV.mul a b));
  (* resolution means no precision loss *)
  let tiny = FV.of_float (uq 0 12) 0.000244140625 in
  let big = FV.of_float (uq 12 0) 4095.0 in
  let s = FV.add big tiny in
  Alcotest.(check (float 1e-12)) "no loss" 4095.000244140625 (FV.to_float s)

let test_value_resize () =
  let x = FV.of_float (uq 4 8) 1.7890625 in
  let t = FV.resize (uq 4 2) x in
  Alcotest.(check (float 1e-9)) "truncate" 1.75 (FV.to_float t);
  let n = FV.resize ~round:`Nearest (uq 4 2) x in
  Alcotest.(check (float 1e-9)) "nearest" 1.75 (FV.to_float n);
  let x2 = FV.of_float (uq 4 8) 1.90 in
  Alcotest.(check (float 1e-9)) "nearest rounds up" 1.75
    (FV.to_float (FV.resize ~round:`Truncate (uq 4 2) x2));
  Alcotest.(check (float 1e-9)) "nearest rounds up 2" 2.0
    (FV.to_float (FV.resize ~round:`Nearest (uq 4 2) x2));
  let sat = FV.resize ~saturate:true (uq 1 2) (FV.of_float (uq 4 2) 7.0) in
  Alcotest.(check (float 1e-9)) "saturating resize" 1.75 (FV.to_float sat)

let test_value_compare () =
  let a = FV.of_float (uq 4 8) 1.5 and b = FV.of_float (uq 8 2) 1.5 in
  Alcotest.(check int) "equal across formats" 0 (FV.compare a b);
  Alcotest.(check bool) "not structurally equal" false (FV.equal a b)

(* Expression layer: build a module computing with fixed-point and
   check against Value semantics over a range of inputs. *)
let test_expr_matches_value () =
  let fa = uq 2 6 and fb = uq 3 3 in
  let b = Builder.create "fixmath" in
  let xa = Builder.input b "a" (F.fmt_width fa) in
  let xb = Builder.input b "b" (F.fmt_width fb) in
  let sum_f = F.resolve_add fa fb in
  let prod_f = F.resolve_mul fa fb in
  let sum_o = Builder.output b "sum" (F.fmt_width sum_f) in
  let prod_o = Builder.output b "prod" (F.fmt_width prod_f) in
  let ea = FE.lift fa (Ir.Var xa) and eb = FE.lift fb (Ir.Var xb) in
  Builder.comb b "math"
    [
      Ir.Assign (sum_o, FE.to_expr (FE.add ea eb));
      Ir.Assign (prod_o, FE.to_expr (FE.mul ea eb));
    ];
  let sim = Rtl_sim.create (Builder.finish b) in
  let check_one ra rb =
    Rtl_sim.set_input sim "a" (Bitvec.of_int ~width:(F.fmt_width fa) ra);
    Rtl_sim.set_input sim "b" (Bitvec.of_int ~width:(F.fmt_width fb) rb);
    Rtl_sim.settle sim;
    let va = FV.create fa (Bitvec.of_int ~width:(F.fmt_width fa) ra) in
    let vb = FV.create fb (Bitvec.of_int ~width:(F.fmt_width fb) rb) in
    Alcotest.(check int)
      (Printf.sprintf "sum %d %d" ra rb)
      (Bitvec.to_int (FV.raw (FV.add va vb)))
      (Rtl_sim.get_int sim "sum");
    Alcotest.(check int)
      (Printf.sprintf "prod %d %d" ra rb)
      (Bitvec.to_int (FV.raw (FV.mul va vb)))
      (Rtl_sim.get_int sim "prod")
  in
  List.iter
    (fun (a, b) -> check_one a b)
    [ (0, 0); (1, 1); (255, 63); (128, 32); (77, 19); (200, 55) ]

let test_expr_width_check () =
  Alcotest.(check bool) "lift checks width" true
    (try
       ignore (FE.lift (uq 4 12) (Ir.Const (Bitvec.zero 8)));
       false
     with F.Fixed_error _ -> true)

let prop_add_never_overflows =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"resolved add is exact"
       QCheck2.Gen.(
         pair (pair (int_range 0 6) (int_range 0 6))
           (pair (int_range 0 255) (int_range 0 255)))
       (fun ((i, f), (ra, rb)) ->
         let fa = uq (i + 1) f and fb = uq f (i + 1) in
         let wa = F.fmt_width fa and wb = F.fmt_width fb in
         let va = FV.create fa (Bitvec.of_int ~width:wa (ra land ((1 lsl wa) - 1))) in
         let vb = FV.create fb (Bitvec.of_int ~width:wb (rb land ((1 lsl wb) - 1))) in
         let s = FV.add va vb in
         Float.abs (FV.to_float s -. (FV.to_float va +. FV.to_float vb))
         < 1e-9))

let suite =
  [
    Alcotest.test_case "formats" `Quick test_formats;
    Alcotest.test_case "resolution rules" `Quick test_resolution_rules;
    Alcotest.test_case "value roundtrip" `Quick test_value_roundtrip;
    Alcotest.test_case "value arithmetic" `Quick test_value_arith_exact;
    Alcotest.test_case "value resize" `Quick test_value_resize;
    Alcotest.test_case "value compare" `Quick test_value_compare;
    Alcotest.test_case "expr matches value" `Quick test_expr_matches_value;
    Alcotest.test_case "expr width check" `Quick test_expr_width_check;
    prop_add_never_overflows;
  ]

let () = Alcotest.run "fixed" [ ("fixed", suite) ]
