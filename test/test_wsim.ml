(* Word-parallel netlist simulation: lane-0 identity with the scalar
   simulator (both scheduling modes, several seeds), per-lane stimulus
   through the packed/transpose API, per-lane stuck-at faults with
   packed divergence detection, the lane-parallel fault campaign, the
   Engine word backend with lane-pinned fault injection, and per-lane
   toggle coverage. *)

open Hdl
open Builder.Dsl
module N = Backend.Netlist
module Ws = Backend.Nl_wsim

let alu_design () =
  let b = Builder.create "mini_alu" in
  let op = Builder.input b "op" 2 in
  let a = Builder.input b "a" 8 in
  let x = Builder.input b "x" 8 in
  let y = Builder.output b "y" 8 in
  Builder.comb b "alu"
    [
      case (v op)
        [
          (0, [ y <-- (v a +: v x) ]);
          (1, [ y <-- (v a -: v x) ]);
          (2, [ y <-- (v a &: v x) ]);
        ]
        [ y <-- (v a ^: v x) ];
    ];
  Builder.finish b

let counter_design () =
  let b = Builder.create "counter" in
  let reset = Builder.input b "reset" 1 in
  let count = Builder.output b "count" 8 in
  Builder.sync b "tick"
    [
      if_ (v reset)
        [ count <-- c ~width:8 0 ]
        [ count <-- (v count +: c ~width:8 1) ];
    ];
  Builder.finish b

let random_bv rng width = Bitvec.init width (fun _ -> Random.State.bool rng)

(* Drive identical random stimulus into the scalar simulator (both
   modes) and the word simulator (both modes) and require identical
   outputs every cycle and identical toggle accounting at the end —
   lane 0 of the word simulator must be indistinguishable from the
   scalar reference. *)
let check_lane0_identity ~lanes ~cycles ~seed nl =
  let s_ev = Backend.Nl_sim.create ~mode:Backend.Nl_sim.Event_driven nl in
  let s_fl = Backend.Nl_sim.create ~mode:Backend.Nl_sim.Full_eval nl in
  let w_ev = Ws.create ~mode:Ws.Event_driven ~lanes nl in
  let w_fl = Ws.create ~mode:Ws.Full_eval ~lanes nl in
  let ins = List.map (fun (n, nets) -> (n, Array.length nets)) (N.inputs nl) in
  let outs = List.map fst (N.outputs nl) in
  let rng = Random.State.make [| seed |] in
  for cycle = 1 to cycles do
    List.iter
      (fun (name, width) ->
        let bv = random_bv rng width in
        Backend.Nl_sim.set_input s_ev name bv;
        Backend.Nl_sim.set_input s_fl name bv;
        Ws.set_input w_ev name bv;
        Ws.set_input w_fl name bv)
      ins;
    Backend.Nl_sim.step s_ev;
    Backend.Nl_sim.step s_fl;
    Ws.step w_ev;
    Ws.step w_fl;
    List.iter
      (fun port ->
        let expect = Backend.Nl_sim.get_output s_ev port in
        List.iter
          (fun (who, got) ->
            if not (Bitvec.equal expect got) then
              Alcotest.failf
                "seed %#x lanes %d cycle %d port %s: %s=%a, scalar-event=%a"
                seed lanes cycle port who Bitvec.pp got Bitvec.pp expect)
          [
            ("scalar-full", Backend.Nl_sim.get_output s_fl port);
            ("word-event", Ws.get_output w_ev port);
            ("word-full", Ws.get_output w_fl port);
          ])
      outs
  done;
  Alcotest.(check int)
    (Printf.sprintf "toggle totals agree (event, seed %#x)" seed)
    (Backend.Nl_sim.toggle_total s_ev)
    (Ws.toggle_total w_ev);
  Alcotest.(check int)
    (Printf.sprintf "toggle totals agree (full, seed %#x)" seed)
    (Backend.Nl_sim.toggle_total s_fl)
    (Ws.toggle_total w_fl)

let test_lane0_identity_seeds () =
  let designs =
    [
      Backend.Lower.lower (alu_design ());
      Backend.Lower.lower (counter_design ());
    ]
  in
  (* Lane counts straddle the word boundaries: a single lane, a partial
     word, and a multi-word configuration. *)
  List.iter
    (fun (seed, lanes) ->
      List.iter (check_lane0_identity ~lanes ~cycles:150 ~seed) designs)
    [ (0xA1, 1); (0xB2, 63); (0xC3, 70) ]

let test_lane0_identity_expocu () =
  let nl = Backend.Lower.lower (Expocu.Expocu_top.rtl_top ()) in
  check_lane0_identity ~lanes:64 ~cycles:150 ~seed:0xE5C1 nl

let test_wsim_loop_detection () =
  let nl = N.create ~fold:false ~name:"ring" () in
  let a = N.add_input nl "a" 1 in
  let g1 = N.and2 nl a.(0) a.(0) in
  let g2 = N.or2 nl g1 a.(0) in
  let cell_of out = List.find (fun (c : N.cell) -> c.out = out) (N.cells nl) in
  (cell_of g1).ins.(1) <- g2;
  Alcotest.check_raises "loop raises"
    (Backend.Nl_sim.Combinational_loop { module_name = "ring"; net = g1 })
    (fun () -> ignore (Ws.create ~lanes:2 nl));
  let sane = Backend.Lower.lower (counter_design ()) in
  Alcotest.(check bool)
    "lanes < 1 rejected" true
    (try
       ignore (Ws.create ~lanes:0 sane);
       false
     with Invalid_argument _ -> true)

let test_per_lane_stimulus () =
  let nl = Backend.Lower.lower (alu_design ()) in
  let cases =
    [|
      (0, 200, 100);
      (1, 100, 30);
      (2, 0xCC, 0xAA);
      (3, 0xCC, 0xAA);
      (0, 1, 2);
      (1, 5, 9);
      (2, 0xF0, 0x3C);
    |]
  in
  let lanes = Array.length cases in
  let scalar = Backend.Nl_sim.create nl in
  let expected =
    Array.map
      (fun (op, a, x) ->
        Backend.Nl_sim.set_input_int scalar "op" op;
        Backend.Nl_sim.set_input_int scalar "a" a;
        Backend.Nl_sim.set_input_int scalar "x" x;
        Backend.Nl_sim.settle scalar;
        Backend.Nl_sim.get_output scalar "y")
      cases
  in
  (* Lane at a time. *)
  let w = Ws.create ~lanes nl in
  Array.iteri
    (fun l (op, a, x) ->
      Ws.set_input_lane w ~lane:l "op" (Bitvec.of_int ~width:2 op);
      Ws.set_input_lane w ~lane:l "a" (Bitvec.of_int ~width:8 a);
      Ws.set_input_lane w ~lane:l "x" (Bitvec.of_int ~width:8 x))
    cases;
  Ws.settle w;
  Array.iteri
    (fun l _ ->
      Alcotest.(check bool)
        (Printf.sprintf "lane %d matches scalar" l)
        true
        (Bitvec.equal expected.(l) (Ws.get_output ~lane:l w "y")))
    cases;
  (* All lanes in one packed call, recovered through transpose. *)
  let w2 = Ws.create ~lanes nl in
  let column f width =
    Bitvec.transpose
      (Array.map (fun case -> Bitvec.of_int ~width (f case)) cases)
  in
  Ws.set_input_packed w2 "op" (column (fun (op, _, _) -> op) 2);
  Ws.set_input_packed w2 "a" (column (fun (_, a, _) -> a) 8);
  Ws.set_input_packed w2 "x" (column (fun (_, _, x) -> x) 8);
  Ws.settle w2;
  let per_lane_y = Bitvec.transpose (Ws.get_output_packed w2 "y") in
  Array.iteri
    (fun l _ ->
      Alcotest.(check bool)
        (Printf.sprintf "packed lane %d matches scalar" l)
        true
        (Bitvec.equal expected.(l) per_lane_y.(l)))
    cases

let test_stuck_at_lanes () =
  let nl = Backend.Lower.lower (counter_design ()) in
  let count = List.assoc "count" (N.outputs nl) in
  let w = Ws.create ~lanes:4 nl in
  Ws.set_input_int w "reset" 1;
  Ws.step w;
  Ws.set_input_int w "reset" 0;
  Ws.inject_stuck_at w ~lane:1 ~net:count.(0) ~value:true;
  Ws.inject_stuck_at w ~lane:2 ~net:count.(1) ~value:false;
  Alcotest.(check int) "two faults live" 2 (Ws.faults w);
  Ws.run w 4;
  Alcotest.(check int) "golden lane counts" 4 (Ws.get_output_int w "count");
  Alcotest.(check int) "clean lane matches golden" 4
    (Ws.get_output_int ~lane:3 w "count");
  Alcotest.(check (list int))
    "faulty lanes detected" [ 1; 2 ]
    (Ws.diverging_lanes w "count")

let test_stuck_at_multiword () =
  (* Faults in lanes beyond the first machine word must inject and
     detect exactly like word-0 lanes. *)
  let nl = Backend.Lower.lower (counter_design ()) in
  let count = List.assoc "count" (N.outputs nl) in
  let w = Ws.create ~lanes:70 nl in
  Ws.set_input_int w "reset" 1;
  Ws.step w;
  Ws.set_input_int w "reset" 0;
  List.iter
    (fun lane -> Ws.inject_stuck_at w ~lane ~net:count.(0) ~value:true)
    [ 1; 64; 68 ];
  Ws.run w 4;
  Alcotest.(check (list int))
    "faulty lanes across words detected" [ 1; 64; 68 ]
    (Ws.diverging_lanes w "count")

let test_fault_campaign () =
  let nl = Backend.Lower.lower (counter_design ()) in
  let count = List.assoc "count" (N.outputs nl) in
  let faults =
    [
      { Backend.Equiv.fault_net = count.(0); stuck_at = true };
      { Backend.Equiv.fault_net = count.(2); stuck_at = false };
    ]
  in
  let c = Backend.Equiv.fault_campaign ~cycles:300 ~seed:7 nl faults in
  Alcotest.(check int) "faults simulated" 2 c.Backend.Equiv.faults_total;
  Alcotest.(check int) "all faults detected" 2 c.Backend.Equiv.faults_detected;
  Alcotest.(check bool)
    "campaign stops early" true
    (c.Backend.Equiv.campaign_cycles <= 300);
  List.iter
    (fun (r : Backend.Equiv.fault_result) ->
      (match r.detected_at with
      | None -> Alcotest.failf "%a" Backend.Equiv.pp_fault_result r
      | Some cyc ->
          Alcotest.(check bool)
            "detected within the campaign" true
            (cyc < c.Backend.Equiv.campaign_cycles));
      match r.shrunk with
      | None -> Alcotest.fail "detected fault has no shrunk reproducer"
      | Some d ->
          Alcotest.(check bool)
            "shrunk window non-empty" true
            (Array.length d.Backend.Equiv.window > 0);
          Alcotest.(check bool)
            "shrunk window replays" true
            (d.Backend.Equiv.replay <> None))
    c.Backend.Equiv.fault_results

let test_word_engine () =
  let nl = Backend.Lower.lower (counter_design ()) in
  let e = Backend.Nl_engine.create_word ~lanes:8 nl in
  Alcotest.(check string) "word kind" "netlist-word" (Engine.kind e);
  Alcotest.(check int) "word lanes" 8 (Engine.lanes e);
  let s = Backend.Nl_engine.create nl in
  Alcotest.(check int) "scalar lanes" 1 (Engine.lanes s);
  Alcotest.check_raises "scalar rejects lane 1"
    (Invalid_argument "Nl_engine: scalar backend has a single lane")
    (fun () -> Engine.set_input_lane s ~lane:1 "reset" (Bitvec.of_bool true));
  Engine.set_input_int e "reset" 1;
  Engine.step e;
  Engine.set_input_int e "reset" 0;
  Engine.run e 3;
  Alcotest.(check int) "broadcast counts" 3 (Engine.get_int e "count");
  Alcotest.(check int) "last lane counts too" 3
    (Bitvec.to_int (Engine.get_lane e ~lane:7 "count"));
  Alcotest.check_raises "fault lane range checked"
    (Invalid_argument "Engine.inject_fault: lane 9 out of range (8 lanes)")
    (fun () -> ignore (Engine.inject_fault ~lane:9 ~port:"count" e));
  let f = Engine.inject_fault ~lane:5 ~port:"count" e in
  Alcotest.(check bool)
    "label names the lane" true
    (String.length (Engine.label f) > 2
    && String.sub (Engine.label f)
         (String.length (Engine.label f) - 2)
         2
       = "@5");
  Alcotest.(check int) "pinned lane sees the flip" (3 lxor 1)
    (Bitvec.to_int (Engine.get_lane f ~lane:5 "count"));
  Alcotest.(check int) "other lanes are clean" 3
    (Bitvec.to_int (Engine.get_lane f ~lane:4 "count"));
  Alcotest.(check int) "plain view (lane 0) is clean" 3 (Engine.get_int f "count")

let test_lane_cover () =
  let nl = Backend.Lower.lower (counter_design ()) in
  let w = Ws.create ~lanes:3 nl in
  Alcotest.(check bool) "no cover before enable" true (Ws.lane_cover w 0 = None);
  Ws.enable_toggle_cover w;
  Ws.set_input_int w "reset" 1;
  Ws.step w;
  Ws.set_input_int w "reset" 0;
  for _ = 1 to 8 do
    (* Hold lane 2 in reset while lanes 0 and 1 count. *)
    Ws.set_input_lane w ~lane:2 "reset" (Bitvec.of_bool true);
    Ws.step w
  done;
  let cov l =
    match Ws.lane_cover w l with
    | Some c -> c
    | None -> Alcotest.failf "lane %d has no collector" l
  in
  Alcotest.(check int) "identical stimulus, identical coverage"
    (Cover.Toggle.covered (cov 0))
    (Cover.Toggle.covered (cov 1));
  Alcotest.(check bool)
    "held lane covers strictly less" true
    (Cover.Toggle.covered (cov 2) < Cover.Toggle.covered (cov 0))

(* Bitvec.transpose is an involution on rectangular arrays. *)
let prop_transpose =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"transpose involution"
       QCheck2.Gen.(
         int_range 1 24 >>= fun w ->
         int_range 1 40 >>= fun n ->
         array_size (return n) (array_size (return w) bool))
       (fun rows ->
         let bvs =
           Array.map
             (fun bits -> Bitvec.init (Array.length bits) (fun i -> bits.(i)))
             rows
         in
         let tt = Bitvec.transpose (Bitvec.transpose bvs) in
         Array.length tt = Array.length bvs
         && Array.for_all2 Bitvec.equal tt bvs))

let suite =
  [
    Alcotest.test_case "lane0 identity (3 seeds, 2 designs)" `Quick
      test_lane0_identity_seeds;
    Alcotest.test_case "lane0 identity (expocu)" `Quick
      test_lane0_identity_expocu;
    Alcotest.test_case "loop detection" `Quick test_wsim_loop_detection;
    Alcotest.test_case "per-lane stimulus" `Quick test_per_lane_stimulus;
    Alcotest.test_case "stuck-at lanes" `Quick test_stuck_at_lanes;
    Alcotest.test_case "stuck-at lanes (multi-word)" `Quick
      test_stuck_at_multiword;
    Alcotest.test_case "fault campaign" `Quick test_fault_campaign;
    Alcotest.test_case "word engine" `Quick test_word_engine;
    Alcotest.test_case "per-lane cover" `Quick test_lane_cover;
    prop_transpose;
  ]

let () = Alcotest.run "wsim" [ ("wsim", suite) ]
