(* Tests for the causal observability stack: the bounded event ring
   (Obs.Event) and its schema-versioned JSONL codec, the "why" query
   engine (Obs.Causal), checkpoint/replay bit-identity across the RTL
   and netlist backends (scalar and word-parallel), the causality and
   provenance attached to differential divergences, and the
   collapsed-stack span exporter. *)

open Hdl
open Builder.Dsl
module Ev = Obs.Event
module E = Backend.Equiv

(* The event log and span tracer are process-global; every test leaves
   them off and empty. *)
let pristine f () =
  let finish () =
    Ev.disable ();
    Ev.reset ();
    Obs.Span.disable ();
    Obs.Span.reset ()
  in
  finish ();
  Fun.protect ~finally:finish f

(* An 8-bit accumulator: y <= y + x every cycle. *)
let acc_design () =
  let b = Builder.create "acc" in
  let x = Builder.input b "x" 8 in
  let y = Builder.output b "y" 8 in
  Builder.sync b "accumulate" [ y <-- (v y +: v x) ];
  Builder.finish b

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)

let test_ring_wraparound () =
  Ev.enable ~capacity:8 ();
  let prev = ref Ev.no_cause in
  for i = 0 to 19 do
    prev := Ev.emit ~cycle:i ~value:i ~cause:!prev Ev.Net_change "n"
  done;
  Alcotest.(check int) "count" 8 (Ev.count ());
  Alcotest.(check int) "dropped" 12 (Ev.dropped ());
  let evs = Ev.events () in
  Alcotest.(check (list int)) "retained seqs, oldest first"
    [ 12; 13; 14; 15; 16; 17; 18; 19 ]
    (List.map (fun (e : Ev.t) -> e.Ev.seq) evs);
  (* Wraparound makes causes unresolvable, never wrong: a resolved
     cause is exactly the referenced (older) event; an unresolvable one
     must lie before the retained window. *)
  List.iter
    (fun (e : Ev.t) ->
      match Ev.find e.Ev.cause with
      | Some c ->
          Alcotest.(check int) "cause resolves to its seq" e.Ev.cause c.Ev.seq;
          Alcotest.(check bool) "cause is older" true (c.Ev.seq < e.Ev.seq)
      | None ->
          Alcotest.(check bool) "evicted cause predates the window" true
            (e.Ev.cause < 12))
    evs;
  (* The causal walk over the wrapped ring is bounded and marks the
     truncation where the chain falls off the retained window. *)
  let newest = List.nth evs 7 in
  let node = Obs.Causal.of_event newest in
  Alcotest.(check int) "walk depth = retained chain" 8 (Obs.Causal.depth node);
  Alcotest.(check bool) "root truncated by eviction" true
    (Obs.Causal.root node).Obs.Causal.truncated

(* ------------------------------------------------------------------ *)
(* JSONL codec                                                         *)

let test_jsonl_roundtrip () =
  Ev.enable ~capacity:16 ();
  let s0 = Ev.emit ~cycle:0 ~value:1 Ev.Stimulus "x[0]" in
  let n0 = Ev.emit ~cycle:0 ~value:0 ~cause:s0 Ev.Net_change "u_m.q[2]" in
  ignore (Ev.emit ~cycle:1 ~lane:3 ~value:1 ~cause:n0 Ev.Fault "y");
  ignore (Ev.emit ~time:20 ~cycle:2 Ev.Delta_open "delta");
  List.iter
    (fun (e : Ev.t) ->
      match Ev.of_json (Ev.to_json e) with
      | Ok e' -> Alcotest.(check bool) "event round-trips" true (e = e')
      | Error msg -> Alcotest.failf "of_json: %s" msg)
    (Ev.events ());
  let s = Ev.to_jsonl () in
  (match Ev.validate_jsonl s with
  | Ok n -> Alcotest.(check int) "validates all events" (Ev.count ()) n
  | Error msg -> Alcotest.failf "validate_jsonl: %s" msg);
  Alcotest.(check bool) "schema stamp present" true
    (String.length s >= String.length Ev.schema_version);
  (* Corruptions the validator must reject: missing header, reordered
     sequence numbers. *)
  let lines = String.split_on_char '\n' (String.trim s) in
  let headerless = String.concat "\n" (List.tl lines) in
  Alcotest.(check bool) "headerless rejected" true
    (Result.is_error (Ev.validate_jsonl headerless));
  let swapped =
    match lines with
    | h :: a :: b :: rest -> String.concat "\n" (h :: b :: a :: rest)
    | _ -> Alcotest.fail "expected at least two event lines"
  in
  Alcotest.(check bool) "non-contiguous seqs rejected" true
    (Result.is_error (Ev.validate_jsonl swapped))

(* ------------------------------------------------------------------ *)
(* Checkpoint / replay bit-identity                                    *)

(* Stimulus as a pure function of (seed, cycle, port index), so any
   window can be replayed verbatim. *)
let stim e seed c =
  List.iteri
    (fun i (name, width) ->
      let rng = Random.State.make [| seed; c; i |] in
      Engine.set_input e name (Bitvec.init width (fun _ -> Random.State.bool rng)))
    (Engine.inputs e)

let window e seed a b =
  let acc = ref [] in
  for c = a to b - 1 do
    stim e seed c;
    Engine.step e;
    acc := List.map (fun (p, _) -> Engine.get e p) (Engine.outputs e) :: !acc
  done;
  List.rev !acc

let check_replay make =
  let e = make () in
  ignore (window e 7 0 20);
  let ck =
    match Engine.checkpoint e with
    | Some ck -> ck
    | None -> Alcotest.fail "backend reports no checkpoint support"
  in
  Alcotest.(check int) "checkpoint at cycle 20" 20 (Engine.checkpoint_cycle ck);
  let first = window e 7 20 40 in
  Engine.restore ck;
  Alcotest.(check int) "rewound to cycle 20" 20 (Engine.cycles e);
  let second = window e 7 20 40 in
  List.iter2
    (List.iter2 (fun a b ->
         Alcotest.(check bool) "bit-identical replay" true (Bitvec.equal a b)))
    first second

let test_checkpoint_rtl () = check_replay (fun () -> Rtl_engine.create (acc_design ()))

let test_checkpoint_netlist () =
  let nl = Backend.Opt.optimize (Backend.Lower.lower (acc_design ())) in
  check_replay (fun () -> Backend.Nl_engine.create nl)

(* Word-parallel: distinct per-lane stimulus, per-lane comparison. *)
let test_checkpoint_word () =
  let nl = Backend.Opt.optimize (Backend.Lower.lower (acc_design ())) in
  let e = Backend.Nl_engine.create_word ~lanes:3 nl in
  let wstim c =
    for lane = 0 to Engine.lanes e - 1 do
      List.iteri
        (fun i (name, width) ->
          let rng = Random.State.make [| 11; c; i; lane |] in
          Engine.set_input_lane e ~lane name
            (Bitvec.init width (fun _ -> Random.State.bool rng)))
        (Engine.inputs e)
    done
  in
  let wwindow a b =
    let acc = ref [] in
    for c = a to b - 1 do
      wstim c;
      Engine.step e;
      for lane = 0 to Engine.lanes e - 1 do
        acc :=
          List.map
            (fun (p, _) -> Engine.get_lane e ~lane p)
            (Engine.outputs e)
          :: !acc
      done
    done;
    List.rev !acc
  in
  ignore (wwindow 0 20);
  let ck = Option.get (Engine.checkpoint e) in
  let first = wwindow 20 40 in
  Engine.restore ck;
  let second = wwindow 20 40 in
  List.iter2
    (List.iter2 (fun a b ->
         Alcotest.(check bool) "lane bit-identical replay" true
           (Bitvec.equal a b)))
    first second

(* Checkpoint/replay must stay bit-identical with events switched on,
   and a rewind must not leave stale cause links behind (every cause
   resolves to an older event). *)
let test_checkpoint_with_events () =
  let nl = Backend.Opt.optimize (Backend.Lower.lower (acc_design ())) in
  let e = Backend.Nl_engine.create nl in
  Engine.enable_events e;
  ignore (window e 5 0 10);
  let ck = Option.get (Engine.checkpoint e) in
  let first = window e 5 10 20 in
  Engine.restore ck;
  let second = window e 5 10 20 in
  List.iter2
    (List.iter2 (fun a b ->
         Alcotest.(check bool) "events-on replay identical" true
           (Bitvec.equal a b)))
    first second;
  List.iter
    (fun (ev : Ev.t) ->
      match Ev.find ev.Ev.cause with
      | Some c ->
          Alcotest.(check bool) "cause older after rewind" true
            (c.Ev.seq < ev.Ev.seq)
      | None -> ())
    (Ev.events ())

(* ------------------------------------------------------------------ *)
(* Why queries                                                         *)

let test_why_reaches_stimulus () =
  let nl = Backend.Opt.optimize (Backend.Lower.lower (acc_design ())) in
  let e = Backend.Nl_engine.create nl in
  Engine.enable_events e;
  Engine.set_input_int e "x" 1;
  Engine.step e;
  Engine.set_input_int e "x" 3;
  Engine.step e;
  match Obs.Causal.why ~subject:"y" ~cycle:(Engine.cycles e) () with
  | None -> Alcotest.fail "no event retained on y"
  | Some node ->
      Alcotest.(check bool) "chain reaches a stimulus edge" true
        (Obs.Causal.reaches (fun ev -> ev.Ev.kind = Ev.Stimulus) node);
      let rendered = Obs.Causal.render node in
      Alcotest.(check bool) "render mentions the subject" true
        (String.length rendered > 0 && Obs.Causal.depth node >= 2)

(* ------------------------------------------------------------------ *)
(* Differential divergence: provenance and causality                   *)

let test_divergence_causality () =
  let design = acc_design () in
  (match
     E.differential ~cycles:60 ~seed:3
       [
         (fun () -> Rtl_engine.create ~label:"gold" design);
         (fun () ->
           Engine.inject_fault ~from_cycle:10 ~port:"y"
             (Rtl_engine.create ~label:"victim" design));
       ]
   with
  | Ok _ -> Alcotest.fail "seeded fault produced no divergence"
  | Error d ->
      Alcotest.(check int) "provenance seed" 3 d.E.provenance.E.seed;
      Alcotest.(check int) "provenance lanes" 1 d.E.provenance.E.lanes;
      Alcotest.(check (list string))
        "provenance engines, reference first"
        [ "gold"; "victim+fault:y" ]
        d.E.provenance.E.engines;
      Alcotest.(check bool) "causality attached" true (d.E.causality <> []);
      Alcotest.(check bool) "causality reaches the injected fault" true
        (List.exists (fun (ev : Ev.t) -> ev.Ev.kind = Ev.Fault) d.E.causality));
  Alcotest.(check bool) "global event log left disabled" true
    (not (Ev.enabled ()))

(* ------------------------------------------------------------------ *)
(* Collapsed stacks                                                    *)

let test_collapsed_stacks () =
  Obs.Span.enable ();
  for _ = 1 to 3 do
    Obs.Span.with_ ~name:"outer" (fun () ->
        Obs.Span.with_ ~name:"inner" (fun () -> ignore (Sys.opaque_identity 1)))
  done;
  let s = Obs.Span.to_collapsed () in
  let lines = String.split_on_char '\n' (String.trim s) in
  Alcotest.(check int) "one line per distinct stack" 2 (List.length lines);
  Alcotest.(check bool) "has folded outer;inner stack" true
    (List.exists
       (fun l -> String.length l > 11 && String.sub l 0 11 = "outer;inner")
       lines);
  List.iter
    (fun l ->
      match String.rindex_opt l ' ' with
      | None -> Alcotest.failf "no count on %S" l
      | Some i ->
          let n = String.sub l (i + 1) (String.length l - i - 1) in
          Alcotest.(check bool) "count is a number" true
            (int_of_string_opt n <> None))
    lines

let () =
  Alcotest.run "event"
    [
      ( "event",
        [
          Alcotest.test_case "ring wraparound" `Quick
            (pristine test_ring_wraparound);
          Alcotest.test_case "jsonl round-trip" `Quick
            (pristine test_jsonl_roundtrip);
          Alcotest.test_case "checkpoint rtl" `Quick
            (pristine test_checkpoint_rtl);
          Alcotest.test_case "checkpoint netlist" `Quick
            (pristine test_checkpoint_netlist);
          Alcotest.test_case "checkpoint word lanes" `Quick
            (pristine test_checkpoint_word);
          Alcotest.test_case "checkpoint with events" `Quick
            (pristine test_checkpoint_with_events);
          Alcotest.test_case "why reaches stimulus" `Quick
            (pristine test_why_reaches_stimulus);
          Alcotest.test_case "divergence causality" `Quick
            (pristine test_divergence_causality);
          Alcotest.test_case "collapsed stacks" `Quick
            (pristine test_collapsed_stacks);
        ] );
    ]
