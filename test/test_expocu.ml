(* Tests for the ExpoCU case study: every component in both styles,
   pairwise cycle equivalence, netlist equivalence, protocol-level I2C
   checks, and a full closed-loop frame through the top level. *)

open Hdl

(* ------------------------- sync ------------------------- *)

let test_sync_behaviour () =
  let sim = Rtl_sim.create (Expocu.Sync.osss_module ()) in
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "reset" 0;
  Rtl_sim.set_input_int sim "data" 1;
  Rtl_sim.step sim;
  (* first 1 shifted in: rising edge at index 0 *)
  Alcotest.(check int) "rising strobe" 1 (Rtl_sim.get_int sim "rising");
  Alcotest.(check int) "value 0001" 1 (Rtl_sim.get_int sim "value");
  Rtl_sim.step sim;
  Alcotest.(check int) "strobe clears" 0 (Rtl_sim.get_int sim "rising");
  Rtl_sim.run sim 2;
  Alcotest.(check int) "all ones" 15 (Rtl_sim.get_int sim "value");
  Alcotest.(check int) "stable now" 1 (Rtl_sim.get_int sim "stable");
  Rtl_sim.set_input_int sim "data" 0;
  Rtl_sim.step sim;
  Alcotest.(check int) "falling strobe" 1 (Rtl_sim.get_int sim "falling")

let test_sync_styles_equivalent () =
  match
    Backend.Equiv.ir_vs_ir ~cycles:1000
      (Expocu.Sync.osss_module ())
      (Expocu.Sync.rtl_module ())
  with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m

let test_sync_netlist_equivalent () =
  let design = Expocu.Sync.osss_module () in
  match
    Backend.Equiv.ir_vs_netlist ~cycles:500 design
      (Backend.Lower.lower design)
  with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m

let test_sync_zero_overhead () =
  (* §8: resolving classes/templates adds no logic.  The OSSS module
     must synthesize to exactly the same optimized cell count as the
     hand-written RTL one. *)
  let gates m =
    Backend.Netlist.cell_count (Backend.Opt.optimize (Backend.Lower.lower m))
  in
  let osss = gates (Expocu.Sync.osss_module ()) in
  let rtl = gates (Expocu.Sync.rtl_module ()) in
  Alcotest.(check int) "identical gate count" rtl osss

(* ------------------------- histogram ------------------------- *)

let feed_pixels sim pixels =
  Rtl_sim.set_input_int sim "pixel_valid" 1;
  Array.iter
    (fun px ->
      Rtl_sim.set_input_int sim "pixel" px;
      Rtl_sim.step sim)
    pixels;
  Rtl_sim.set_input_int sim "pixel_valid" 0

let read_bins sim bins =
  Array.init bins (fun i ->
      Rtl_sim.set_input_int sim "rd_idx" i;
      Rtl_sim.settle sim;
      Rtl_sim.get_int sim "rd_count")

let test_histogram_counts () =
  List.iter
    (fun make ->
      let sim = Rtl_sim.create (make ()) in
      Rtl_sim.set_input_int sim "reset" 1;
      Rtl_sim.step sim;
      Rtl_sim.set_input_int sim "reset" 0;
      Rtl_sim.set_input_int sim "clear" 0;
      let pixels = Array.init 200 (fun i -> i * 37 mod 256) in
      feed_pixels sim pixels;
      let expected = Expocu.Exposure_algo.histogram ~bins:16 pixels in
      let got = read_bins sim 16 in
      Alcotest.(check (array int)) "bins match reference" expected got;
      Alcotest.(check int) "total" 200 (Rtl_sim.get_int sim "total");
      (* clear wipes *)
      Rtl_sim.set_input_int sim "clear" 1;
      Rtl_sim.step sim;
      Rtl_sim.set_input_int sim "clear" 0;
      Alcotest.(check (array int)) "cleared" (Array.make 16 0) (read_bins sim 16))
    [
      (fun () -> Expocu.Histogram.osss_module ());
      (fun () -> Expocu.Histogram.rtl_module ());
    ]

let test_histogram_styles_equivalent () =
  match
    Backend.Equiv.ir_vs_ir ~cycles:800
      (Expocu.Histogram.osss_module ())
      (Expocu.Histogram.rtl_module ())
  with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m

let test_histogram_netlist_equivalent () =
  let design = Expocu.Histogram.osss_module ~bins:8 ~count_w:8 () in
  match
    Backend.Equiv.ir_vs_netlist ~cycles:300 design
      (Backend.Lower.lower design)
  with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m

(* ------------------------- threshold ------------------------- *)

(* Run a threshold scan against a given histogram content. *)
let run_threshold make_module (h : int array) =
  let bins = Array.length h in
  let total = Array.fold_left ( + ) 0 h in
  let sim = Rtl_sim.create (make_module ()) in
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "reset" 0;
  Rtl_sim.set_input_int sim "total" total;
  Rtl_sim.set_input_int sim "start" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "start" 0;
  let guard = ref 0 in
  while Rtl_sim.get_int sim "done" = 0 && !guard < 1000 do
    (* serve the histogram read port like the real wiring does *)
    let idx = Rtl_sim.get_int sim "rd_idx" in
    Rtl_sim.set_input_int sim "rd_count" (if idx < bins then h.(idx) else 0);
    Rtl_sim.step sim;
    incr guard
  done;
  Alcotest.(check bool) "finished" true (!guard < 1000);
  ( Rtl_sim.get_int sim "median_bin",
    Rtl_sim.get_int sim "underexposed",
    Rtl_sim.get_int sim "overexposed" )

let test_threshold_median () =
  let cases =
    [
      (* dark image: everything in bin 1 *)
      (Array.init 16 (fun i -> if i = 1 then 100 else 0), 1, 1, 0);
      (* bright image: everything in bin 14 *)
      (Array.init 16 (fun i -> if i = 14 then 50 else 0), 14, 0, 1);
      (* uniform: median in the middle *)
      (Array.make 16 10, 7, 0, 0);
    ]
  in
  List.iter
    (fun make ->
      List.iter
        (fun (h, want_median, want_under, want_over) ->
          let median, under, over = run_threshold make h in
          Alcotest.(check int) "median" want_median median;
          Alcotest.(check int) "under" want_under under;
          Alcotest.(check int) "over" want_over over;
          Alcotest.(check int) "reference agrees" want_median
            (Expocu.Exposure_algo.median_bin h))
        cases)
    [
      (fun () -> Expocu.Threshold.osss_module ());
      (fun () -> Expocu.Threshold.rtl_module ());
    ]

let test_threshold_styles_equivalent () =
  match
    Backend.Equiv.ir_vs_ir ~cycles:1000
      (Expocu.Threshold.osss_module ())
      (Expocu.Threshold.rtl_module ())
  with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m

(* ------------------------- param calc ------------------------- *)

let run_param make_module updates =
  let sim = Rtl_sim.create (make_module ()) in
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "reset" 0;
  List.map
    (fun (median, target) ->
      Rtl_sim.set_input_int sim "median_bin" median;
      Rtl_sim.set_input_int sim "target_bin" target;
      Rtl_sim.set_input_int sim "update" 1;
      Rtl_sim.step sim;
      Rtl_sim.set_input_int sim "update" 0;
      (* serial multiplication: wait for the result *)
      Rtl_sim.step sim;
      let guard = ref 0 in
      while Rtl_sim.get_int sim "ready" = 0 && !guard < 100 do
        Rtl_sim.step sim;
        incr guard
      done;
      Rtl_sim.get_int sim "exposure")
    updates

let test_param_latency () =
  (* ready drops during the serial multiply and returns after ~18 cycles *)
  let sim = Rtl_sim.create (Expocu.Param_calc.osss_module ()) in
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "reset" 0;
  Alcotest.(check int) "ready after reset" 1 (Rtl_sim.get_int sim "ready");
  Rtl_sim.set_input_int sim "median_bin" 3;
  Rtl_sim.set_input_int sim "target_bin" 7;
  Rtl_sim.set_input_int sim "update" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "update" 0;
  Alcotest.(check int) "computing" 0 (Rtl_sim.get_int sim "ready");
  Alcotest.(check int) "busy" 1 (Rtl_sim.get_int sim "busy");
  let cycles = ref 0 in
  while Rtl_sim.get_int sim "ready" = 0 && !cycles < 100 do
    Rtl_sim.step sim;
    incr cycles
  done;
  Alcotest.(check bool) "serial latency"
    true
    (!cycles >= Expocu.Param_calc.mult_cycles
    && !cycles <= Expocu.Param_calc.mult_cycles + 4)

let test_param_matches_golden () =
  let updates = [ (3, 7); (3, 7); (10, 7); (7, 7); (0, 15); (15, 0) ] in
  let golden =
    let e = ref Expocu.Param_calc.gain_unity in
    List.map
      (fun (median, target) ->
        e := Expocu.Param_calc.golden_update ~exposure:!e ~median ~target;
        !e)
      updates
  in
  List.iter
    (fun make ->
      Alcotest.(check (list int)) "sequence matches golden" golden
        (run_param make updates))
    [
      (fun () -> Expocu.Param_calc.osss_module ());
      (fun () -> Expocu.Param_calc.rtl_module ());
    ]

let test_param_styles_equivalent () =
  match
    Backend.Equiv.ir_vs_ir ~cycles:1000
      (Expocu.Param_calc.osss_module ())
      (Expocu.Param_calc.rtl_module ())
  with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m

let test_param_netlist_equivalent () =
  let design = Expocu.Param_calc.rtl_module () in
  match
    Backend.Equiv.ir_vs_netlist ~cycles:300 design
      (Backend.Lower.lower design)
  with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m

let test_param_clamps () =
  (* Hammer toward dark: exposure must stop at gain_max, not wrap. *)
  let updates = List.init 40 (fun _ -> (0, 15)) in
  List.iter
    (fun make ->
      let last = List.nth (run_param make updates) 39 in
      Alcotest.(check int) "clamped at max" Expocu.Param_calc.gain_max last)
    [
      (fun () -> Expocu.Param_calc.osss_module ());
      (fun () -> Expocu.Param_calc.rtl_module ());
    ];
  (* and toward bright: clamp at min *)
  let updates = List.init 60 (fun _ -> (15, 0)) in
  let last = List.nth (run_param (fun () -> Expocu.Param_calc.osss_module ()) updates) 59 in
  Alcotest.(check int) "clamped at min" Expocu.Param_calc.gain_min last

(* ------------------------- VHDL IP ------------------------- *)

let test_ip_mult_module () =
  let sim = Rtl_sim.create (Expocu.Vhdl_ip.mult16_module ()) in
  List.iter
    (fun (a, b) ->
      Rtl_sim.set_input_int sim "a" a;
      Rtl_sim.set_input_int sim "b" b;
      Rtl_sim.settle sim;
      Alcotest.(check int) (Printf.sprintf "%d*%d" a b) (a * b)
        (Rtl_sim.get_int sim "p"))
    [ (0, 0); (1, 1); (65535, 65535); (1234, 5678); (40000, 3) ]

let test_ip_netlist_injection () =
  (* Splice the IP into a netlist at gate level and simulate. *)
  let module N = Backend.Netlist in
  let nl = N.create ~name:"ip_host" () in
  let a = N.add_input nl "a" 16 in
  let b = N.add_input nl "b" 16 in
  let p = Expocu.Vhdl_ip.mult16_netlist nl ~a ~b in
  N.add_output nl "p" p;
  N.check nl;
  let sim = Backend.Nl_sim.create nl in
  List.iter
    (fun (x, y) ->
      Backend.Nl_sim.set_input_int sim "a" x;
      Backend.Nl_sim.set_input_int sim "b" y;
      Backend.Nl_sim.settle sim;
      Alcotest.(check int) (Printf.sprintf "%d*%d" x y) (x * y)
        (Backend.Nl_sim.get_output_int sim "p"))
    [ (3, 5); (65535, 2); (500, 500); (40000, 40000) ]

(* ------------------------- I2C ------------------------- *)

(* Protocol monitor: sample scl/sda cycle by cycle, decode start/stop
   and data bits, return the three bytes of the write transaction. *)
type i2c_decode = {
  bytes : int list;
  got_start : bool;
  got_stop : bool;
  acks_sampled : int;
}

let monitor_i2c sim ~max_cycles =
  let prev_scl = ref 1 and prev_sda = ref 1 in
  let bits = ref [] and bytes = ref [] in
  let got_start = ref false and got_stop = ref false in
  let acks = ref 0 in
  let cycle = ref 0 in
  let bus_sda () =
    (* pull-up: released bus reads 1 *)
    if Rtl_sim.get_int sim "sda_oe" = 1 then Rtl_sim.get_int sim "sda_out"
    else 1
  in
  while (not !got_stop) && !cycle < max_cycles do
    Rtl_sim.settle sim;
    let scl = Rtl_sim.get_int sim "scl" in
    let sda = bus_sda () in
    if scl = 1 && !prev_scl = 1 && !prev_sda = 1 && sda = 0 then begin
      got_start := true;
      bits := []
    end
    else if scl = 1 && !prev_scl = 1 && !prev_sda = 0 && sda = 1 then
      got_stop := true
    else if scl = 1 && !prev_scl = 0 then begin
      (* rising SCL: data bit or ack slot *)
      if Rtl_sim.get_int sim "sda_oe" = 0 then begin
        incr acks;
        (* byte boundary: collect the 8 bits gathered since last ack *)
        let byte =
          List.fold_left (fun acc b -> (acc * 2) + b) 0 (List.rev !bits)
        in
        bytes := byte :: !bytes;
        bits := []
      end
      else bits := sda :: !bits
    end;
    prev_scl := scl;
    prev_sda := sda;
    Rtl_sim.step sim;
    incr cycle
  done;
  {
    bytes = List.rev !bytes;
    got_start = !got_start;
    got_stop = !got_stop;
    acks_sampled = !acks;
  }

let start_i2c sim ~dev ~reg ~data =
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "reset" 0;
  Rtl_sim.set_input_int sim "sda_in" 0;
  (* slave always acks *)
  Rtl_sim.set_input_int sim "dev_addr" dev;
  Rtl_sim.set_input_int sim "reg_addr" reg;
  Rtl_sim.set_input_int sim "data" data;
  Rtl_sim.set_input_int sim "go" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "go" 0

let test_i2c_transaction () =
  List.iter
    (fun make ->
      let sim = Rtl_sim.create (make ()) in
      start_i2c sim ~dev:0x48 ~reg:0x10 ~data:0xA5;
      let d = monitor_i2c sim ~max_cycles:1000 in
      Alcotest.(check bool) "start seen" true d.got_start;
      Alcotest.(check bool) "stop seen" true d.got_stop;
      Alcotest.(check (list int)) "three bytes on the bus"
        [ 0x48 * 2; 0x10; 0xA5 ] d.bytes;
      Alcotest.(check int) "three ack slots" 3 d.acks_sampled;
      Alcotest.(check int) "no ack error" 0 (Rtl_sim.get_int sim "ack_error");
      (* the STOP condition appears mid-slot; run out the remaining
         quarter phases before the done flag is due *)
      Rtl_sim.run sim 20;
      Alcotest.(check int) "done" 1 (Rtl_sim.get_int sim "done"))
    [
      (fun () -> Expocu.I2c.osss_module ());
      (fun () -> Expocu.I2c.systemc_module ());
      (fun () -> Expocu.I2c.vhdl_module ());
    ]

(* Read transaction: a little slave model drives sda_in bit by bit
   after the third ack position (start of the data-in byte). *)
let run_i2c_read make ~slave_byte =
  let sim = Rtl_sim.create (make ()) in
  Rtl_sim.set_input_int sim "reset" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "reset" 0;
  Rtl_sim.set_input_int sim "sda_in" 0;
  (* acks *)
  Rtl_sim.set_input_int sim "rw" 1;
  Rtl_sim.set_input_int sim "dev_addr" 0x48;
  Rtl_sim.set_input_int sim "reg_addr" 0x10;
  Rtl_sim.set_input_int sim "data" 0;
  Rtl_sim.set_input_int sim "go" 1;
  Rtl_sim.step sim;
  Rtl_sim.set_input_int sim "go" 0;
  (* track scl falling edges while released to serve the data byte *)
  let prev_scl = ref 1 in
  let prev_sda = ref 1 in
  let releases = ref 0 in
  let bits_served = ref 0 in
  let bytes = ref [] and bits = ref [] in
  let guard = ref 0 in
  while Rtl_sim.get_int sim "done" = 0 && !guard < 4000 do
    Rtl_sim.step sim;
    let scl = Rtl_sim.get_int sim "scl" in
    let oe = Rtl_sim.get_int sim "sda_oe" in
    let sda_bus = if oe = 1 then Rtl_sim.get_int sim "sda_out" else 1 in
    (* START / repeated START: SDA falls while SCL high — restart the
       byte accumulator, as any bus monitor does *)
    if scl = 1 && !prev_scl = 1 && !prev_sda = 1 && sda_bus = 0 then bits := [];
    if scl = 1 && !prev_scl = 0 then begin
      if oe = 0 then begin
        incr releases;
        if !releases <= 3 then begin
          (* slave ack position: collect the byte shifted so far *)
          let byte = List.fold_left (fun a b -> (a * 2) + b) 0 (List.rev !bits) in
          bytes := byte :: !bytes;
          bits := []
        end
      end
      else bits := Rtl_sim.get_int sim "sda_out" :: !bits
    end;
    (* after the third release (address+R acked), serve data bits on
       falling edges while the master keeps SDA released *)
    if scl = 0 && !prev_scl = 1 && !releases >= 3 && !bits_served < 8 then begin
      let bit = (slave_byte lsr (7 - !bits_served)) land 1 in
      Rtl_sim.set_input_int sim "sda_in" bit;
      incr bits_served
    end;
    prev_scl := scl;
    prev_sda := sda_bus;
    incr guard
  done;
  Rtl_sim.run sim 20;
  (List.rev !bytes, Rtl_sim.get_int sim "rd_data",
   Rtl_sim.get_int sim "ack_error", Rtl_sim.get_int sim "done")

let test_i2c_read_transaction () =
  List.iter
    (fun make ->
      let bytes, rd, ack_err, done_ = run_i2c_read make ~slave_byte:0xA5 in
      Alcotest.(check (list int)) "addr+W, reg, addr+R on the bus"
        [ (0x48 * 2); 0x10; (0x48 * 2) + 1 ] bytes;
      Alcotest.(check int) "received byte" 0xA5 rd;
      Alcotest.(check int) "no ack error" 0 ack_err;
      Alcotest.(check int) "done" 1 done_)
    [
      (fun () -> Expocu.I2c.osss_module ());
      (fun () -> Expocu.I2c.systemc_module ());
      (fun () -> Expocu.I2c.vhdl_module ());
    ]

let test_i2c_read_timing () =
  Alcotest.(check int) "39 slots x 4 phases x 4" (39 * 16)
    (Expocu.I2c.read_transaction_cycles ~divider:4)

let test_i2c_nack_detected () =
  let sim = Rtl_sim.create (Expocu.I2c.osss_module ()) in
  start_i2c sim ~dev:0x48 ~reg:0x10 ~data:0xA5;
  Rtl_sim.set_input_int sim "sda_in" 1;
  (* no slave: NACK *)
  let _ = monitor_i2c sim ~max_cycles:1000 in
  Alcotest.(check int) "ack error" 1 (Rtl_sim.get_int sim "ack_error")

let test_i2c_three_way_equivalence () =
  let pairs =
    [
      (Expocu.I2c.osss_module (), Expocu.I2c.systemc_module ());
      (Expocu.I2c.osss_module (), Expocu.I2c.vhdl_module ());
    ]
  in
  List.iter
    (fun (a, b) ->
      match Backend.Equiv.ir_vs_ir ~cycles:2000 a b with
      | Ok _ -> ()
      | Error m ->
          Alcotest.failf "%s vs %s: %a" a.Ir.mod_name b.Ir.mod_name
            Backend.Equiv.pp_divergence m)
    pairs

let test_i2c_netlist_equivalent () =
  let design = Expocu.I2c.osss_module () in
  match
    Backend.Equiv.ir_vs_netlist ~cycles:600 design
      (Backend.Lower.lower design)
  with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m

let test_i2c_timing_budget () =
  let cycles = Expocu.I2c.transaction_cycles ~divider:4 in
  Alcotest.(check int) "29 slots x 4 phases x 4" (29 * 16) cycles

(* ------------------------- reset ctrl ------------------------- *)

let test_reset_ctrl () =
  List.iter
    (fun make ->
      let sim = Rtl_sim.create (make ()) in
      Rtl_sim.set_input_int sim "ext_reset" 0;
      Rtl_sim.step sim;
      Alcotest.(check int) "por asserted" 1 (Rtl_sim.get_int sim "sys_reset");
      Rtl_sim.run sim 12;
      Alcotest.(check int) "por released" 0 (Rtl_sim.get_int sim "sys_reset");
      Rtl_sim.set_input_int sim "ext_reset" 1;
      Rtl_sim.run sim 3;
      Alcotest.(check int) "external reset synchronized" 1
        (Rtl_sim.get_int sim "sys_reset");
      Rtl_sim.set_input_int sim "ext_reset" 0;
      (* release restarts the power-on stretcher: still in reset... *)
      Rtl_sim.run sim 4;
      Alcotest.(check int) "stretching after release" 1
        (Rtl_sim.get_int sim "sys_reset");
      (* ...until the stretch count elapses *)
      Rtl_sim.run sim 12;
      Alcotest.(check int) "released again" 0 (Rtl_sim.get_int sim "sys_reset"))
    [
      (fun () -> Expocu.Reset_ctrl.osss_module ());
      (fun () -> Expocu.Reset_ctrl.rtl_module ());
    ]

let test_reset_ctrl_equivalent () =
  match
    Backend.Equiv.ir_vs_ir ~cycles:500
      (Expocu.Reset_ctrl.osss_module ())
      (Expocu.Reset_ctrl.rtl_module ())
  with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m

(* ------------------------- camera + golden loop ------------------------- *)

let test_camera_responds_to_exposure () =
  let cam = Expocu.Camera.create () in
  let dark = Expocu.Camera.mean_level (Expocu.Camera.frame cam ~exposure:0.5) in
  let bright = Expocu.Camera.mean_level (Expocu.Camera.frame cam ~exposure:4.0) in
  Alcotest.(check bool) "more exposure, brighter" true (bright > dark +. 20.0)

let test_golden_loop_converges () =
  let cam = Expocu.Camera.create ~illumination:0.1 () in
  let trace = Expocu.Exposure_algo.converge ~frames:40 ~camera:cam () in
  let _, final_gain = List.nth trace 39 in
  (* dark scene: the loop must raise the gain well above unity *)
  Alcotest.(check bool) "gain raised" true (final_gain > 1.5);
  let medians = List.map fst trace in
  let last_median = List.nth medians 39 in
  Alcotest.(check bool) "median pulled toward target" true
    (abs (last_median - 7) <= 2)

(* ------------------------- full ExpoCU ------------------------- *)

(* Drive one frame through a top-level and return (median, exposure). *)
let run_frame sim (frame : int array) =
  (* wait out power-on reset *)
  Rtl_sim.set_input_int sim "ext_reset" 0;
  Rtl_sim.set_input_int sim "target_bin" 7;
  Rtl_sim.set_input_int sim "sda_in" 0;
  Rtl_sim.run sim 15;
  (* frame streaming *)
  Rtl_sim.set_input_int sim "frame_sync" 1;
  Rtl_sim.run sim 4;
  (* sync delay so fs_rising clears the histogram before pixels *)
  Rtl_sim.set_input_int sim "line_valid" 1;
  Array.iter
    (fun px ->
      Rtl_sim.set_input_int sim "pixel" px;
      Rtl_sim.step sim)
    frame;
  Rtl_sim.set_input_int sim "line_valid" 0;
  Rtl_sim.set_input_int sim "frame_sync" 0;
  (* scan + update + i2c transaction *)
  let guard = ref 0 in
  while Rtl_sim.get_int sim "frame_done" = 0 && !guard < 4000 do
    Rtl_sim.step sim;
    incr guard
  done;
  Alcotest.(check bool) "frame completed" true (!guard < 4000);
  (Rtl_sim.get_int sim "median_bin", Rtl_sim.get_int sim "exposure")

let test_top_closed_loop () =
  List.iter
    (fun make ->
      let sim = Rtl_sim.create (make ()) in
      let frame = Array.init 256 (fun i -> i mod 48) in
      (* dark frame *)
      let median, exposure = run_frame sim frame in
      let want_median =
        Expocu.Exposure_algo.median_bin
          (Expocu.Exposure_algo.histogram ~bins:16 frame)
      in
      Alcotest.(check int) "hardware median = golden" want_median median;
      let want_exposure =
        Expocu.Param_calc.golden_update
          ~exposure:Expocu.Param_calc.gain_unity ~median:want_median ~target:7
      in
      Alcotest.(check int) "hardware exposure = golden" want_exposure exposure)
    [
      (fun () -> Expocu.Expocu_top.osss_top ());
      (fun () -> Expocu.Expocu_top.rtl_top ());
    ]

let test_behavioural_model () =
  let r = Expocu.Behave_model.run ~frames:3 ~illumination:0.08 () in
  Alcotest.(check int) "frames completed" 3 r.Expocu.Behave_model.frames;
  Alcotest.(check bool) "gain raised on dark scene" true
    (r.Expocu.Behave_model.final_gain > 1.0);
  Alcotest.(check bool) "simulated cycles plausible" true
    (r.Expocu.Behave_model.sim_cycles > 1000)

let test_tops_cycle_equivalent () =
  (* E8 core check: the OSSS and the conventional ExpoCU respond
     identically cycle by cycle to arbitrary stimulus. *)
  match
    Backend.Equiv.ir_vs_ir ~cycles:2500
      (Expocu.Expocu_top.osss_top ())
      (Expocu.Expocu_top.rtl_top ())
  with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "%a" Backend.Equiv.pp_divergence m

(* Property: random frames through the RTL histogram + threshold pair
   reproduce the golden median, for random bin configurations. *)
let prop_random_frames =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:25 ~name:"random frames match golden median"
       QCheck2.Gen.(
         pair (int_range 0 1000)
           (list_size (int_range 10 120) (int_range 0 255)))
       (fun (seed, pixels) ->
         ignore seed;
         let pixels = Array.of_list pixels in
         let hist_sim = Rtl_sim.create (Expocu.Histogram.rtl_module ()) in
         Rtl_sim.set_input_int hist_sim "reset" 1;
         Rtl_sim.step hist_sim;
         Rtl_sim.set_input_int hist_sim "reset" 0;
         feed_pixels hist_sim pixels;
         let bins = read_bins hist_sim 16 in
         let golden_hist = Expocu.Exposure_algo.histogram ~bins:16 pixels in
         let median, _, _ = run_threshold Expocu.Threshold.osss_module bins in
         bins = golden_hist
         && median = Expocu.Exposure_algo.median_bin golden_hist))

let test_emitters_handle_full_chip () =
  (* Text generation must cover every construct the ExpoCU uses. *)
  List.iter
    (fun design ->
      let vhdl = Vhdl.emit design in
      let verilog = Verilog.emit design in
      let systemc = Osss.Resolve.emit_module (Elaborate.flatten design) in
      Alcotest.(check bool) "vhdl nonempty" true (String.length vhdl > 5000);
      Alcotest.(check bool) "verilog nonempty" true
        (String.length verilog > 5000);
      Alcotest.(check bool) "systemc nonempty" true
        (String.length systemc > 5000))
    [ Expocu.Expocu_top.osss_top (); Expocu.Expocu_top.rtl_top () ]

let test_netlist_verilog_full_chip () =
  let nl =
    Backend.Opt.optimize (Backend.Lower.lower (Expocu.Expocu_top.rtl_top ()))
  in
  let text = Backend.Netlist.emit_verilog nl in
  Alcotest.(check bool) "structural verilog emitted" true
    (String.length text > 50_000)

let suite =
  [
    Alcotest.test_case "sync behaviour" `Quick test_sync_behaviour;
    Alcotest.test_case "sync styles equivalent" `Quick
      test_sync_styles_equivalent;
    Alcotest.test_case "sync netlist equivalent" `Quick
      test_sync_netlist_equivalent;
    Alcotest.test_case "sync zero overhead (E3)" `Quick test_sync_zero_overhead;
    Alcotest.test_case "histogram counts" `Quick test_histogram_counts;
    Alcotest.test_case "histogram styles equivalent" `Quick
      test_histogram_styles_equivalent;
    Alcotest.test_case "histogram netlist equivalent" `Quick
      test_histogram_netlist_equivalent;
    Alcotest.test_case "threshold median" `Quick test_threshold_median;
    Alcotest.test_case "threshold styles equivalent" `Quick
      test_threshold_styles_equivalent;
    Alcotest.test_case "param latency" `Quick test_param_latency;
    Alcotest.test_case "param matches golden" `Quick test_param_matches_golden;
    Alcotest.test_case "param styles equivalent" `Quick
      test_param_styles_equivalent;
    Alcotest.test_case "param netlist equivalent" `Quick
      test_param_netlist_equivalent;
    Alcotest.test_case "param clamps" `Quick test_param_clamps;
    Alcotest.test_case "ip mult module" `Quick test_ip_mult_module;
    Alcotest.test_case "ip netlist injection" `Quick test_ip_netlist_injection;
    Alcotest.test_case "i2c transaction" `Quick test_i2c_transaction;
    Alcotest.test_case "i2c read transaction" `Quick
      test_i2c_read_transaction;
    Alcotest.test_case "i2c read timing" `Quick test_i2c_read_timing;
    Alcotest.test_case "i2c nack" `Quick test_i2c_nack_detected;
    Alcotest.test_case "i2c three-way equivalence" `Quick
      test_i2c_three_way_equivalence;
    Alcotest.test_case "i2c netlist equivalent" `Quick
      test_i2c_netlist_equivalent;
    Alcotest.test_case "i2c timing budget" `Quick test_i2c_timing_budget;
    Alcotest.test_case "reset ctrl" `Quick test_reset_ctrl;
    Alcotest.test_case "reset ctrl equivalent" `Quick
      test_reset_ctrl_equivalent;
    Alcotest.test_case "camera exposure response" `Quick
      test_camera_responds_to_exposure;
    Alcotest.test_case "golden loop converges" `Quick
      test_golden_loop_converges;
    Alcotest.test_case "top closed loop" `Quick test_top_closed_loop;
    Alcotest.test_case "behavioural model" `Quick test_behavioural_model;
    Alcotest.test_case "tops cycle equivalent (E8)" `Quick
      test_tops_cycle_equivalent;
    prop_random_frames;
    Alcotest.test_case "emitters handle full chip" `Quick
      test_emitters_handle_full_chip;
    Alcotest.test_case "netlist verilog full chip" `Quick
      test_netlist_verilog_full_chip;
  ]

let () = Alcotest.run "expocu" [ ("expocu", suite) ]
